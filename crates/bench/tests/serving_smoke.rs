//! End-to-end smoke of the serving path: cache semantics, executor-pool
//! determinism, and the QPS harness itself.
//!
//! The properties here are the serving-path contract:
//! * row sets are a pure function of the request mix — the executor pool's
//!   thread count must never change them;
//! * a warm cache hit answers without running chase & backchase (audited
//!   via the process-wide [`chase_and_backchase_runs`] counter);
//! * the per-family point picks *partition* the central query — pooling
//!   the distinct rows over the whole pick domain reproduces the full
//!   query's distinct result, so the cached template + bound parameter
//!   really is the same query, not a lookalike;
//! * the measurement harness (`run_suite`) itself runs green, which in a
//!   debug build also pushes every served plan through
//!   `cnb_analyze::validate_plan` (see `cnb_bench::serving`).

use cnb_bench::serving::run_suite;
use cnb_core::prelude::chase_and_backchase_runs;
use cnb_engine::PlanServer;
use cnb_workloads::{suite, DataScale, Workload};

fn server_for(w: &dyn Workload) -> PlanServer {
    PlanServer::new(w.optimizer(), cnb_bench::config(w.expectations().strategy))
}

/// The executor pool is a throughput knob only: serving the same mix on
/// 1/2/4/8 workers returns byte-identical row sets in request order.
#[test]
fn row_sets_are_identical_at_every_thread_count() {
    let scale = DataScale::new(120, 7);
    for w in suite() {
        let db = w.generate_at(scale);
        let requests: Vec<_> = (0..10).map(|i| w.serving_query(scale, i)).collect();
        let mut baseline = None;
        for threads in [1usize, 2, 4, 8] {
            let mut server = server_for(w.as_ref());
            let rows: Vec<_> = server
                .serve_batch(&db, &requests, threads)
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|e| panic!("{}: request failed: {e}", w.name()))
                        .1
                        .rows
                })
                .collect();
            match &baseline {
                None => baseline = Some(rows),
                Some(b) => assert_eq!(
                    b,
                    &rows,
                    "{}: {threads} worker threads changed the row sets",
                    w.name()
                ),
            }
        }
    }
}

/// A warm hit never re-plans: across a full warmed mix the process-wide
/// chase & backchase run counter does not move, for any family.
#[test]
fn warm_hits_answer_without_chase_and_backchase() {
    let scale = DataScale::new(120, 7);
    for w in suite() {
        let db = w.generate_at(scale);
        let mut server = server_for(w.as_ref());
        let (plan, _) = server.serve(&db, &w.serving_query(scale, 0)).unwrap();
        assert!(!plan.cache_hit, "{}: first request must miss", w.name());
        let before = chase_and_backchase_runs();
        for pick in 1..8u64 {
            let (plan, _) = server.serve(&db, &w.serving_query(scale, pick)).unwrap();
            assert!(plan.cache_hit, "{}: warmed pick {pick} must hit", w.name());
        }
        assert_eq!(
            chase_and_backchase_runs(),
            before,
            "{}: a warm hit invoked the optimizer",
            w.name()
        );
        assert_eq!(server.cache().misses(), 1, "{}", w.name());
        assert_eq!(server.cache().hits(), 7, "{}", w.name());
    }
}

/// Sweeping the whole pick domain partitions the central query: the pooled
/// *distinct* rows over every point pick equal the full query's distinct
/// rows. This pins that the cached template + bound constant is
/// semantically the central query — a fingerprint collision, a mis-bound
/// parameter, or a wrong plan would all break the partition. Distinct
/// rather than multiset because C&B minimization is set-semantics (join
/// elimination may change multiplicities, as the paper's containment
/// theory allows).
#[test]
fn point_picks_partition_the_central_query() {
    let scale = DataScale::new(90, 7);
    // Each family's serving pick domain (the modulus its `serving_query`
    // applies at this scale; see the per-family impls).
    let domains: [(Box<dyn Workload>, u64); 5] = [
        (Box::new(cnb_workloads::Ec1::new(3, 1)), scale.rows as u64),
        (
            Box::new(cnb_workloads::Ec2::new(2, 2, 1)),
            scale.rows as u64,
        ),
        (
            Box::new(cnb_workloads::Ec3::new(3, 1)),
            (scale.rows / 3).max(2) as u64,
        ),
        (Box::new(cnb_workloads::Ec4::new(3, 2, 1)), 20),
        (
            Box::new(cnb_workloads::Ec5::triangle()),
            (scale.rows / 2).max(2) as u64,
        ),
    ];
    for (w, domain) in &domains {
        let db = w.generate_at(scale);
        let mut full: Vec<String> = cnb_engine::execute(&db, &w.query())
            .unwrap()
            .rows
            .iter()
            .map(|r| r.to_string())
            .collect();
        let mut server = server_for(w.as_ref());
        let mut pooled: Vec<String> = Vec::new();
        for pick in 0..*domain {
            let (_, exec) = server.serve(&db, &w.serving_query(scale, pick)).unwrap();
            pooled.extend(exec.rows.iter().map(|r| r.to_string()));
        }
        full.sort();
        full.dedup();
        pooled.sort();
        pooled.dedup();
        assert_eq!(
            full,
            pooled,
            "{}: point picks over the domain 0..{domain} do not partition the central query",
            w.name()
        );
        assert_eq!(
            server.cache().misses(),
            1,
            "{}: one shape, one miss",
            w.name()
        );
    }
}

/// The QPS harness runs green at smoke scale and reports sane numbers; in
/// a debug build this also validates every served plan against
/// `cnb_analyze::validate_plan` (the harness panics on a finding).
#[test]
fn harness_smoke_runs_and_validates_served_plans() {
    let points = run_suite(DataScale::new(80, 7), 6, 2);
    let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels, ["EC1", "EC2", "EC3", "EC4", "EC5", "mix"]);
    for p in &points {
        assert!(p.qps > 0.0, "{}: qps must be positive", p.label);
        assert!(
            p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms,
            "{}: percentiles must be monotone",
            p.label
        );
        assert_eq!(p.cache_misses, if p.label == "mix" { 5 } else { 1 });
        assert!(
            p.hit_rate > 0.8,
            "{}: warmed mix should be hit-dominated (got {})",
            p.label,
            p.hit_rate
        );
    }
}

/// The open-loop harness reconciles: every scheduled arrival lands in
/// exactly one outcome bucket, saturation (utilization > 1) produces
/// pressure casualties, and light load serves nearly everything.
#[test]
fn open_loop_buckets_reconcile_and_pressure_shows_up() {
    use cnb_bench::serving::{run_open_loop, OpenLoopConfig};
    let scale = DataScale::new(80, 7);
    let cfg = OpenLoopConfig {
        requests: 60,
        utilizations: vec![0.5, 3.0],
        backlog_cap: 8,
        ..OpenLoopConfig::default()
    };
    for w in suite() {
        let points = run_open_loop(w.as_ref(), scale, 2, &cfg);
        assert_eq!(points.len(), 2, "{}", w.name());
        for p in &points {
            assert_eq!(
                p.served + p.shed + p.expired + p.faulted,
                p.requests,
                "{} u={}: buckets must reconcile",
                p.label,
                p.utilization
            );
            assert!(
                p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms,
                "{} u={}: sojourn percentiles must be monotone",
                p.label,
                p.utilization
            );
        }
        let (light, heavy) = (&points[0], &points[1]);
        assert!(
            light.served + light.faulted == light.requests,
            "{}: at half load nothing should be shed or expired (got {light:?})",
            w.name()
        );
        assert!(
            heavy.shed + heavy.expired > 0,
            "{}: at 3x capacity the backlog/deadline must bite (got {heavy:?})",
            w.name()
        );
        assert!(
            heavy.served < heavy.requests,
            "{}: overload cannot serve everyone",
            w.name()
        );
    }
}
