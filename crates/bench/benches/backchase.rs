//! Criterion micro-benchmarks of the backchase strategies (figs. 6–7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cnb_core::prelude::*;
use cnb_workloads::{Ec1, Ec2, Ec3};

fn cfg(strategy: Strategy) -> OptimizerConfig {
    OptimizerConfig::with_strategy(strategy).timeout(std::time::Duration::from_secs(30))
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("backchase");
    g.sample_size(10);

    // EC1 [4,2]: FB exponential, OQF per-loop.
    let ec1 = Ec1::new(4, 2);
    let q1 = ec1.query();
    let opt1 = Optimizer::new(ec1.schema());
    for strategy in [Strategy::Full, Strategy::Oqf, Strategy::Ocs] {
        g.bench_with_input(
            BenchmarkId::new("ec1_4_2", strategy.to_string()),
            &strategy,
            |b, &s| b.iter(|| opt1.optimize(&q1, &cfg(s))),
        );
    }

    // EC2 [1,4,2]: one star, 4 corners, 2 overlapping views.
    let ec2 = Ec2::new(1, 4, 2);
    let q2 = ec2.query();
    let opt2 = Optimizer::new(ec2.schema());
    for strategy in [Strategy::Full, Strategy::Oqf, Strategy::Ocs] {
        g.bench_with_input(
            BenchmarkId::new("ec2_1_4_2", strategy.to_string()),
            &strategy,
            |b, &s| b.iter(|| opt2.optimize(&q2, &cfg(s))),
        );
    }

    // EC3 with 4 classes: OCS's linear flipping vs FB.
    let ec3 = Ec3::new(4, 0);
    let q3 = ec3.query();
    let opt3 = Optimizer::new(ec3.schema());
    for strategy in [Strategy::Full, Strategy::Ocs] {
        g.bench_with_input(
            BenchmarkId::new("ec3_4", strategy.to_string()),
            &strategy,
            |b, &s| b.iter(|| opt3.optimize(&q3, &cfg(s))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
