//! Micro-benchmarks of the backchase strategies (figs. 6–7), on the in-repo
//! timing harness — including a `CNB_THREADS` sweep of the parallel frontier
//! (the FB rows at 1/2/4 workers measure the scoped-pool speedup directly;
//! plan sets are identical across the sweep by construction).

use cnb_bench::timing::BenchGroup;
use cnb_core::prelude::*;
use cnb_workloads::{Ec1, Ec2, Ec3};

fn cfg(strategy: Strategy) -> OptimizerConfig {
    cfg_threads(strategy, 1)
}

fn cfg_threads(strategy: Strategy, threads: usize) -> OptimizerConfig {
    let mut cfg =
        OptimizerConfig::with_strategy(strategy).timeout(std::time::Duration::from_secs(30));
    cfg.backchase.threads = threads;
    cfg
}

fn main() {
    let mut g = BenchGroup::new("backchase");
    g.sample_size(10);

    // EC1 [4,2]: FB exponential, OQF per-loop.
    let ec1 = Ec1::new(4, 2);
    let q1 = ec1.query();
    let opt1 = Optimizer::new(ec1.schema());
    for strategy in [Strategy::Full, Strategy::Oqf, Strategy::Ocs] {
        g.bench(&format!("ec1_4_2/{strategy}"), || {
            opt1.optimize(&q1, &cfg(strategy))
        });
    }
    // Thread sweep on the hottest path: the full backchase frontier.
    for threads in [1usize, 2, 4] {
        g.bench(&format!("ec1_4_2/FB/t{threads}"), || {
            opt1.optimize(&q1, &cfg_threads(Strategy::Full, threads))
        });
    }

    // EC2 [1,4,2]: one star, 4 corners, 2 overlapping views.
    let ec2 = Ec2::new(1, 4, 2);
    let q2 = ec2.query();
    let opt2 = Optimizer::new(ec2.schema());
    for strategy in [Strategy::Full, Strategy::Oqf, Strategy::Ocs] {
        g.bench(&format!("ec2_1_4_2/{strategy}"), || {
            opt2.optimize(&q2, &cfg(strategy))
        });
    }
    for threads in [1usize, 2, 4] {
        g.bench(&format!("ec2_1_4_2/FB/t{threads}"), || {
            opt2.optimize(&q2, &cfg_threads(Strategy::Full, threads))
        });
    }

    // EC3 with 4 classes: OCS's linear flipping vs FB.
    let ec3 = Ec3::new(4, 0);
    let q3 = ec3.query();
    let opt3 = Optimizer::new(ec3.schema());
    for strategy in [Strategy::Full, Strategy::Ocs] {
        g.bench(&format!("ec3_4/{strategy}"), || {
            opt3.optimize(&q3, &cfg(strategy))
        });
    }
    g.finish();
}
