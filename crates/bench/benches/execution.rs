//! Micro-benchmarks of the execution engine, on the in-repo timing harness:
//!
//! * original query vs the best C&B plan on generated EC2 data (the
//!   engine-level view of fig. 9), and
//! * the batched executor vs the retained tuple-at-a-time oracle on the EC1
//!   chain workload — the batched join path must not be slower.
//!
//! After timing, each workload prints the observed cardinality/selectivity
//! feedback one execution hands to the cost model (`feed_cost_model`).

use cnb_bench::timing::BenchGroup;
use cnb_core::prelude::*;
use cnb_engine::{execute, execute_legacy};
use cnb_workloads::{ec2::Ec2DataSpec, Ec1, Ec2};

fn main() {
    let ec2 = Ec2::new(2, 2, 1);
    let db = ec2.generate(Ec2DataSpec {
        rows: 2000,
        ..Ec2DataSpec::default()
    });
    let q = ec2.query();
    let opt = Optimizer::new(ec2.schema());
    let res = opt.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Oqf));
    let best = &res.plans[0].query; // best-first ordering
    assert!(!res.plans[0].physical_used.is_empty());

    let mut g = BenchGroup::new("execution_ec2_2_2_1");
    g.bench("original_query", || execute(&db, &q).unwrap());
    g.bench("best_view_plan", || execute(&db, best).unwrap());
    g.finish();

    // Batched vs tuple-at-a-time on the EC1 chain (same plans, same rows,
    // byte-identical order — only the execution model differs).
    let ec1 = Ec1::new(3, 1);
    let db1 = ec1.generate(2000, 0.05, 7);
    let q1 = ec1.query();
    let mut g = BenchGroup::new("execution_ec1_3_1");
    g.bench("ec1_chain_batched", || execute(&db1, &q1).unwrap());
    g.bench("ec1_chain_legacy", || execute_legacy(&db1, &q1).unwrap());
    g.finish();

    // The cardinality-feedback loop, shown once per workload: measured
    // collection sizes and predicate selectivities land in the cost model.
    for (name, db, q) in [("ec2", &db, &q), ("ec1", &db1, &q1)] {
        let stats = execute(db, q).unwrap().stats;
        let mut model = CostModel::default().with_cardinalities(db.cardinalities());
        cnb_engine::feed_cost_model(&stats, &mut model);
        println!(
            "{name}: observed {} collection cardinalities, {} predicate selectivities \
             (model join_selectivity {:.6}), est. cost with measured stats: {:.1}",
            stats.observed_cardinalities().len(),
            stats.observed_join_selectivities().len(),
            model.join_selectivity,
            model.cost(q),
        );
    }
}
