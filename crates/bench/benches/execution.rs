//! Micro-benchmarks of the execution engine: original query vs the best C&B
//! plan on generated EC2 data (the engine-level view of fig. 9), on the
//! in-repo timing harness.

use cnb_bench::timing::BenchGroup;
use cnb_core::prelude::*;
use cnb_engine::execute;
use cnb_workloads::{ec2::Ec2DataSpec, Ec2};

fn main() {
    let ec2 = Ec2::new(2, 2, 1);
    let db = ec2.generate(Ec2DataSpec {
        rows: 2000,
        ..Ec2DataSpec::default()
    });
    let q = ec2.query();
    let opt = Optimizer::new(ec2.schema());
    let res = opt.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Oqf));
    let best = &res.plans[0].query; // best-first ordering
    assert!(!res.plans[0].physical_used.is_empty());

    let mut g = BenchGroup::new("execution_ec2_2_2_1");
    g.bench("original_query", || execute(&db, &q).unwrap());
    g.bench("best_view_plan", || execute(&db, best).unwrap());
    g.finish();
}
