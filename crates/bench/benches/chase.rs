//! Micro-benchmarks of the chase (fig. 5's engine-level view), on the
//! in-repo timing harness.

use cnb_bench::timing::BenchGroup;
use cnb_core::prelude::*;
use cnb_workloads::{Ec1, Ec2, Ec3};

fn main() {
    let mut g = BenchGroup::new("chase");

    for j in [0usize, 5, 9] {
        let ec1 = Ec1::new(10, j);
        let cs = ec1.schema().all_constraints();
        let q = ec1.query();
        g.bench(&format!("ec1_chain10/{}", ec1.index_count()), || {
            chase_query(&q, &cs, ChaseConfig::default())
        });
    }

    for (s, cn, v) in [(3usize, 4usize, 2usize), (3, 5, 3)] {
        let ec2 = Ec2::new(s, cn, v);
        let cs = ec2.schema().all_constraints();
        let q = ec2.query();
        g.bench(&format!("ec2/{s}x{cn}v{v}"), || {
            chase_query(&q, &cs, ChaseConfig::default())
        });
    }

    for n in [4usize, 8] {
        let ec3 = Ec3::new(n, (n - 1) / 2);
        let cs = ec3.schema().all_constraints();
        let q = ec3.query();
        g.bench(&format!("ec3_classes/{n}"), || {
            chase_query(&q, &cs, ChaseConfig::default())
        });
    }
    g.finish();
}
