//! Micro-benchmarks of the congruence closure — the paper credits it for the
//! chase's speed (§3.1) — on the in-repo timing harness.

use cnb_bench::timing::BenchGroup;
use cnb_core::prelude::*;
use cnb_ir::prelude::*;

fn main() {
    let mut g = BenchGroup::new("congruence");

    for n in [100u32, 1000] {
        g.bench(&format!("union_chain/{n}"), || {
            let mut cong = Congruence::new();
            let terms: Vec<TermId> = (0..n)
                .map(|i| cong.intern_path(&PathExpr::from(Var(i)).dot("A")))
                .collect();
            for w in terms.windows(2) {
                cong.merge(w[0], w[1]);
            }
            cong.equal(terms[0], terms[(n - 1) as usize])
        });
    }

    // Congruence cascade: merging roots must propagate through field chains.
    for depth in [4usize, 16] {
        g.bench(&format!("field_cascade/{depth}"), || {
            let mut cong = Congruence::new();
            let mut p1 = PathExpr::from(Var(0));
            let mut p2 = PathExpr::from(Var(1));
            for i in 0..depth {
                p1 = p1.dot(format!("F{i}").as_str());
                p2 = p2.dot(format!("F{i}").as_str());
            }
            let t1 = cong.intern_path(&p1);
            let t2 = cong.intern_path(&p2);
            let r1 = cong.intern_path(&PathExpr::from(Var(0)));
            let r2 = cong.intern_path(&PathExpr::from(Var(1)));
            cong.merge(r1, r2);
            assert!(cong.equal(t1, t2));
        });
    }

    // Savepoint churn: the backchase hot-loop shape — save, intern a few
    // fresh terms, merge (with congruence cascades), roll back. The flat
    // median across base sizes is the O(delta) rollback claim, measured.
    for base_terms in [64u32, 512] {
        let mut rig = cnb_bench::ChurnRig::new(base_terms);
        let mut k = 0u32;
        g.bench(&format!("save_rollback_churn/{base_terms}"), || {
            k = k.wrapping_add(1);
            rig.cycle(k)
        });
    }

    // implied() on a realistic chased query.
    let ec2 = cnb_workloads::Ec2::new(2, 3, 2);
    let cs = ec2.schema().all_constraints();
    let (db, _) = chase_query(&ec2.query(), &cs, ChaseConfig::default());
    let r1 = db.query.from[0].var;
    let v = db.query.from.last().unwrap().var;
    {
        let mut db = db.clone();
        g.bench("implied_on_chased_ec2", || {
            db.implied(&PathExpr::from(r1).dot("K"), &PathExpr::from(v).dot("K"))
        });
    }

    g.finish();
}
