//! Core routines of the nine experiment binaries (fig. 5 – fig. 10 and the
//! §5.3.1 plan-count table from the paper, plus the post-paper figs. 11/12
//! for the EC4 star-schema and EC5 cyclic-join workloads), extracted from
//! the `src/bin/` drivers so integration tests can smoke-run every figure
//! with tiny parameters — the binaries themselves just print the returned
//! markdown.
//!
//! The optimization figures (6/7/8 and the plan-count table) honour the
//! `CNB_THREADS` knob through [`crate::config`]: the backchase shards its
//! frontier across that many workers. Plan counts and plan order are
//! thread-count-invariant by construction (see `cnb_core::backchase`), so
//! rendered tables differ across thread counts only in the timing columns —
//! `crates/bench/tests/thread_invariance.rs` checks exactly that.

use crate::{cell, config, render_table, run, secs, tpp};
use cnb_core::prelude::*;
use cnb_engine::datagen::EdgeDist;
use cnb_engine::execute;
use cnb_workloads::{
    ec2::Ec2DataSpec, ec4::Ec4DataSpec, ec5::Ec5DataSpec, Ec1, Ec2, Ec3, Ec4, Ec5, Workload,
};
use std::time::Instant;

/// Grid size for a figure routine: the paper's full parameter grid, or a
/// tiny grid for smoke tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The grids of §5 (what the binaries run).
    Paper,
    /// A seconds-scale subset proving the routine end to end.
    Smoke,
}

/// The worker count the backchase will actually use under the current
/// `CNB_THREADS` setting — stamped into figure titles so recorded outputs
/// are self-describing.
fn effective_threads() -> usize {
    cnb_core::parallel::resolve_threads(0)
}

fn chase_time(q: &cnb_ir::prelude::Query, cs: &[cnb_ir::prelude::Constraint]) -> (f64, usize) {
    let start = Instant::now();
    let (db, stats) = chase_query(q, cs, ChaseConfig::default());
    assert!(!stats.truncated, "chase must reach a fixpoint");
    (start.elapsed().as_secs_f64(), db.query.from.len())
}

/// Figure 5 — time to chase as schema/query parameters grow, for all three
/// experimental configurations.
pub fn fig5_chase_time(scale: Scale) -> String {
    let mut out = String::new();

    // EC1 (fig. 5 left): an n-relation chain; vary the number of indexes
    // m = n + j by adding secondary indexes.
    let (ec1_n, ec1_js): (usize, &[usize]) = match scale {
        Scale::Paper => (10, &[0, 3, 5, 7, 9]),
        Scale::Smoke => (3, &[0, 1]),
    };
    let mut t1 = Vec::new();
    for &j in ec1_js {
        let ec1 = Ec1::new(ec1_n, j);
        let cs = ec1.schema().all_constraints();
        let (t, arity) = chase_time(&ec1.query(), &cs);
        t1.push(vec![
            format!("{}", ec1.index_count()),
            format!("{}", cs.len()),
            secs(std::time::Duration::from_secs_f64(t)),
            format!("{arity}"),
        ]);
    }
    out.push_str(&render_table(
        &format!("Fig 5 (left): time to chase [EC1], {ec1_n}-relation chain query"),
        &[
            "#indexes",
            "#constraints",
            "chase time (s)",
            "universal plan size",
        ],
        &t1,
    ));

    // EC2 (fig. 5 middle): s stars; query size s(c+1); one series per
    // views-per-star count.
    let (ec2_s, ec2_vs, ec2_cs): (usize, &[usize], &[usize]) = match scale {
        Scale::Paper => (3, &[2, 3], &[3, 4, 5, 6, 7]),
        Scale::Smoke => (2, &[1], &[2, 3]),
    };
    let mut t2 = Vec::new();
    for &v in ec2_vs {
        let label = format!(
            "{} views+{} keys = {}",
            ec2_s * v,
            ec2_s,
            2 * ec2_s * v + ec2_s
        );
        for &c in ec2_cs {
            if v + 1 > c {
                continue;
            }
            let ec2 = Ec2::new(ec2_s, c, v);
            let cs = ec2.schema().all_constraints();
            let (t, arity) = chase_time(&ec2.query(), &cs);
            t2.push(vec![
                label.clone(),
                format!("{}", ec2.query_size()),
                format!("{}", cs.len()),
                secs(std::time::Duration::from_secs_f64(t)),
                format!("{arity}"),
            ]);
        }
    }
    out.push_str(&render_table(
        &format!("Fig 5 (middle): time to chase [EC2], {ec2_s} stars, growing star size"),
        &[
            "series",
            "query size",
            "#constraints",
            "chase time (s)",
            "universal plan size",
        ],
        &t2,
    ));

    // EC3 (fig. 5 right): vary the number of classes; inverse constraints
    // (2 per hop) plus ASR constraints (2 per ASR).
    let ec3_ns: &[usize] = match scale {
        Scale::Paper => &[2, 4, 6, 8, 10],
        Scale::Smoke => &[2, 3],
    };
    let mut t3 = Vec::new();
    for &n in ec3_ns {
        let ec3 = Ec3::new(n, (n - 1) / 2);
        let cs = ec3.schema().all_constraints();
        let (t, arity) = chase_time(&ec3.query(), &cs);
        t3.push(vec![
            format!("{n}"),
            format!("{}", cs.len()),
            secs(std::time::Duration::from_secs_f64(t)),
            format!("{arity}"),
        ]);
    }
    out.push_str(&render_table(
        "Fig 5 (right): time to chase [EC3], full navigation query",
        &[
            "#classes",
            "#constraints",
            "chase time (s)",
            "universal plan size",
        ],
        &t3,
    ));
    out
}

/// Figure 6 — time per generated plan, FB vs OQF vs OCS, on EC1 (right
/// panel) and EC3 (left panel, where OQF degenerates into FB).
pub fn fig6_tpp_ec1_ec3(scale: Scale) -> String {
    let mut out = String::new();
    // EC1 grid: the paper's x-axis [3,0] [3,1] ... [5,2].
    let ec1_points: &[(usize, usize)] = match scale {
        Scale::Paper => &[
            (3, 0),
            (3, 1),
            (3, 2),
            (3, 3),
            (4, 0),
            (4, 1),
            (4, 2),
            (4, 3),
            (5, 0),
            (5, 1),
            (5, 2),
        ],
        Scale::Smoke => &[(3, 0), (3, 1)],
    };
    let mut t1 = Vec::new();
    for &(n, j) in ec1_points {
        let ec1 = Ec1::new(n, j);
        let opt = Optimizer::new(ec1.schema());
        let q = ec1.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({} plans)", tpp(&r), r.plans.len()))
        };
        t1.push(vec![
            format!("[{n},{j}]"),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Oqf)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    out.push_str(&render_table(
        &format!(
            "Fig 6 (right): time per plan [EC1] — seconds (plan count), {} backchase thread(s)",
            effective_threads()
        ),
        &["[#relations,#secondary]", "FB", "OQF", "OCS"],
        &t1,
    ));

    // EC3: FB(=OQF) vs OCS. Missing FB cells above the timeout reproduce
    // the paper's missing bars.
    let ec3_ns: std::ops::RangeInclusive<usize> = match scale {
        Scale::Paper => 2..=6,
        Scale::Smoke => 2..=3,
    };
    let mut t3 = Vec::new();
    for n in ec3_ns {
        let ec3 = Ec3::new(n, 0);
        let opt = Optimizer::new(ec3.schema());
        let q = ec3.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({} plans)", tpp(&r), r.plans.len()))
        };
        t3.push(vec![
            format!("{n}"),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    out.push_str(&render_table(
        "Fig 6 (left): time per plan [EC3] — seconds (plan count)",
        &["#classes traversed", "FB (=OQF)", "OCS"],
        &t3,
    ));
    out
}

/// Figure 7 — time per generated plan on EC2 over the paper's
/// [#views per star, #stars, star size] grid.
pub fn fig7_tpp_ec2(scale: Scale) -> String {
    // The paper's 22 x-axis points, as [v, s, c].
    let paper_points: &[(usize, usize, usize)] = &[
        (1, 1, 5),
        (1, 2, 3),
        (1, 2, 5),
        (1, 3, 2),
        (1, 3, 3),
        (1, 3, 4),
        (1, 3, 5),
        (1, 4, 4),
        (2, 1, 5),
        (2, 2, 3),
        (2, 2, 4),
        (2, 2, 5),
        (2, 3, 5),
        (2, 4, 4),
        (3, 1, 4),
        (3, 1, 5),
        (3, 2, 4),
        (3, 2, 5),
        (3, 3, 4),
        (3, 3, 5),
        (4, 1, 5),
        (4, 2, 5),
    ];
    let points = match scale {
        Scale::Paper => paper_points,
        Scale::Smoke => &paper_points[..2],
    };
    let mut table = Vec::new();
    for &(v, s, c) in points {
        let ec2 = Ec2::new(s, c, v);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({})", tpp(&r), r.plans.len()))
        };
        table.push(vec![
            format!("[{v},{s},{c}]"),
            format!("{}", ec2.query_size()),
            format!("{}", ec2.constraint_count()),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Oqf)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    render_table(
        &format!(
            "Fig 7: time per plan [EC2] — seconds (plan count); — = timeout; {} backchase thread(s)",
            effective_threads()
        ),
        &["[v,s,c]", "query size", "#constraints", "FB", "OQF", "OCS"],
        &table,
    )
}

fn normalized_times(
    opt: &Optimizer,
    q: &cnb_ir::prelude::Query,
    group_sizes: &[usize],
) -> Vec<Option<f64>> {
    let mut times = Vec::new();
    for &g in group_sizes {
        let mut cfg = config(Strategy::Ocs);
        cfg.stratum_group_size = Some(g);
        let res = opt.optimize(q, &cfg);
        times.push(if res.timed_out {
            None
        } else {
            Some(res.total_time.as_secs_f64())
        });
    }
    // Normalize by the stratum-size-1 time (the paper's y-axis).
    let base = times[0].unwrap_or(1.0);
    times
        .into_iter()
        .map(|t| t.map(|t| t / base.max(1e-9)))
        .collect()
}

/// Figure 8 — effect of stratification granularity on optimization time:
/// stratum size 1 = OCS; merging everything approaches FB.
pub fn fig8_stratification(scale: Scale) -> String {
    let group_sizes: &[usize] = match scale {
        Scale::Paper => &[1, 2, 3, 4],
        Scale::Smoke => &[1, 2],
    };
    let ec3_ns: &[usize] = match scale {
        Scale::Paper => &[5, 6],
        Scale::Smoke => &[4],
    };
    let ec2_point = match scale {
        Scale::Paper => Some((3, 3, 1)),
        Scale::Smoke => None,
    };
    let mut table = Vec::new();

    for &n in ec3_ns {
        let ec3 = Ec3::new(n, 0);
        let opt = Optimizer::new(ec3.schema());
        let q = ec3.query();
        let norm = normalized_times(&opt, &q, group_sizes);
        let mut row = vec![format!("EC3 with {n} classes")];
        row.extend(norm.into_iter().map(|t| cell(t.map(|t| format!("{t:.2}")))));
        table.push(row);
    }
    if let Some((s, c, v)) = ec2_point {
        let ec2 = Ec2::new(s, c, v);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let norm = normalized_times(&opt, &q, group_sizes);
        let mut row = vec![format!("EC2 [{s},{c},{v}]")];
        row.extend(norm.into_iter().map(|t| cell(t.map(|t| format!("{t:.2}")))));
        table.push(row);
    }

    let mut header: Vec<String> = vec!["configuration".into()];
    header.extend(group_sizes.iter().map(|g| format!("size {g}")));
    render_table(
        "Fig 8: normalized optimization time vs stratum size (1 = OCS)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        &table,
    )
}

/// Figure 9 — detail of the plans generated for one EC2 instance (3 stars,
/// 2 corners per star, 1 view per star → 8 plans) with per-plan execution
/// times on a dataset of `rows` tuples per relation.
///
/// Exercises the cardinality-feedback loop end to end: every plan's
/// per-operator observed cardinalities are folded into one cost model
/// (`cnb_engine::feed_cost_model`), and the table's last column re-costs
/// each plan with the *measured* selectivities — the ordering an optimizer
/// with execution feedback would use.
pub fn fig9_plan_detail(rows: usize) -> String {
    let ec2 = Ec2::new(3, 2, 1);
    let spec = Ec2DataSpec {
        rows,
        ..Ec2DataSpec::default()
    };
    let db = ec2.generate(spec);
    let q = ec2.query();
    let opt = Optimizer::new(ec2.schema());
    let res = opt.optimize(&q, &config(Strategy::Oqf));
    let mut out = format!(
        "# Stars: 3, # Corners per star: 2, # Views per star: 1. {} plans generated. Time to generate all plans: {}s\n",
        res.plans.len(),
        secs(res.total_time)
    );

    // Pass 1: execute every plan, feeding observed stats into one model.
    let mut model = CostModel::default().with_cardinalities(db.cardinalities());
    let execs: Vec<cnb_engine::ExecResult> = res
        .plans
        .iter()
        .map(|p| {
            let exec = execute(&db, &p.query).expect("plan executes");
            cnb_engine::feed_cost_model(&exec.stats, &mut model);
            exec
        })
        .collect();

    // Pass 2: render, re-costing each plan under the measured model.
    let mut table = Vec::new();
    for (i, (p, exec)) in res.plans.iter().zip(&execs).enumerate() {
        let views: Vec<String> = p.physical_used.iter().map(|s| s.to_string()).collect();
        let corners: Vec<String> = p
            .query
            .from
            .iter()
            .filter_map(|b| match &b.range {
                cnb_ir::prelude::Range::Name(s) if s.as_str().starts_with('S') => {
                    Some(s.to_string())
                }
                _ => None,
            })
            .collect();
        let original = if views.is_empty() {
            " (*) original query"
        } else {
            ""
        };
        table.push(vec![
            format!("{}", i + 1),
            secs(exec.stats.elapsed),
            format!("{}", exec.rows.len()),
            format!("{:.0}", model.cost(&p.query)),
            views.join(", "),
            format!("{}{}", corners.join(", "), original),
        ]);
    }
    out.push_str(&render_table(
        "Fig 9: plans for EC2 [3 stars, 2 corners, 1 view per star]",
        &[
            "Plan #",
            "Execution time (s)",
            "rows",
            "est. cost (measured stats)",
            "Views used",
            "Corner relations used",
        ],
        &table,
    ));
    out.push_str(&format!(
        "\nmeasured join selectivity: {:.6} ({} samples); measured set fan-out: {:.2} ({} samples)\n",
        model.join_selectivity,
        model.selectivity_samples,
        model.fanout,
        model.fanout_samples,
    ));
    out
}

/// Figure 10 — the benefit of optimization: Redux and ReduxFirst time
/// reductions for growing EC2 instances on datasets of `rows` tuples per
/// relation.
///
/// ```text
/// Redux      = (ExT − (ExTBest + OptT))          / ExT
/// ReduxFirst = (ExT − (ExTBest + OptT/#plans))   / ExT
/// ```
pub fn fig10_redux(scale: Scale, rows: usize) -> String {
    // The paper's x-axis: [#stars, #corners per star, #views per star].
    let points: &[(usize, usize, usize)] = match scale {
        Scale::Paper => &[
            (2, 2, 1),
            (2, 3, 1),
            (2, 4, 1),
            (3, 2, 1),
            (3, 3, 1),
            (3, 4, 1),
            (2, 3, 2),
            (2, 4, 2),
            (3, 3, 2),
            (2, 4, 3),
            (3, 4, 2),
        ],
        Scale::Smoke => &[(2, 2, 1)],
    };
    let mut table = Vec::new();
    for &(s, c, v) in points {
        let ec2 = Ec2::new(s, c, v);
        let db = ec2.generate(Ec2DataSpec {
            rows,
            ..Ec2DataSpec::default()
        });
        let q = ec2.query();
        let opt = Optimizer::new(ec2.schema());
        let res = opt.optimize(&q, &config(Strategy::Oqf));
        if res.timed_out || res.plans.is_empty() {
            table.push(vec![
                format!("[{s},{c},{v}]"),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
            ]);
            continue;
        }
        let opt_t = res.total_time.as_secs_f64();
        let ex_t = execute(&db, &q)
            .expect("original executes")
            .stats
            .elapsed
            .as_secs_f64();
        // Execute every plan; ExTBest is the fastest (the original query is
        // always among the plans, so ExTBest <= ExT up to noise).
        let ex_best = res
            .plans
            .iter()
            .map(|p| {
                execute(&db, &p.query)
                    .expect("plan executes")
                    .stats
                    .elapsed
                    .as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let redux = (ex_t - (ex_best + opt_t)) / ex_t;
        let redux_first = (ex_t - (ex_best + opt_t / res.plans.len() as f64)) / ex_t;
        table.push(vec![
            format!("[{s},{c},{v}]"),
            secs(std::time::Duration::from_secs_f64(opt_t)),
            secs(std::time::Duration::from_secs_f64(ex_t)),
            secs(std::time::Duration::from_secs_f64(ex_best)),
            format!("{:.0}%", redux * 100.0),
            format!("{:.0}%", redux_first * 100.0),
        ]);
    }
    render_table(
        &format!("Fig 10: time reduction [EC2], {rows} tuples/relation"),
        &[
            "[s,c,v]",
            "OptT (s)",
            "ExT (s)",
            "ExTBest (s)",
            "Redux",
            "ReduxFirst",
        ],
        &table,
    )
}

/// Figure 11 (beyond the paper) — the EC4 TPC-style star schema: FB vs OQF
/// vs OCS time-per-plan over a `[#dims, #views, #indexed-FKs]` grid, then
/// per-plan execution detail with cost-model feedback on one instance —
/// every plan's observed cardinalities fold into a single [`CostModel`] and
/// the last column re-costs the plan under the *measured* statistics, the
/// ranking an optimizer with execution feedback would use (fig. 9's loop on
/// the new workload).
pub fn fig11_ec4_star(scale: Scale, rows: usize) -> String {
    let mut out = String::new();
    let points: &[(usize, usize, usize)] = match scale {
        Scale::Paper => &[(3, 1, 0), (3, 2, 1), (4, 2, 1), (4, 3, 2), (4, 4, 2)],
        Scale::Smoke => &[(3, 1, 1)],
    };
    let mut table = Vec::new();
    for &(d, v, j) in points {
        let ec4 = Ec4::new(d, v, j);
        let opt = ec4.optimizer();
        let q = ec4.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({})", tpp(&r), r.plans.len()))
        };
        table.push(vec![
            format!("[{d},{v},{j}]"),
            format!("{}", ec4.constraint_count()),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Oqf)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    out.push_str(&render_table(
        &format!(
            "Fig 11 (top): time per plan [EC4 star schema] — seconds (plan count); {} backchase thread(s)",
            effective_threads()
        ),
        &["[d,v,j]", "#constraints", "FB", "OQF", "OCS"],
        &table,
    ));

    // Execution + feedback detail on one instance.
    let (ec4, dim_rows) = match scale {
        Scale::Paper => (Ec4::new(4, 2, 1), rows / 5),
        Scale::Smoke => (Ec4::new(3, 2, 1), rows / 2),
    };
    let db = ec4.generate(Ec4DataSpec {
        fact_rows: rows,
        dim_rows: dim_rows.max(1),
        fk_sel: 0.6,
        ..Ec4DataSpec::default()
    });
    let q = ec4.query();
    let res = ec4.optimizer().optimize(&q, &config(Strategy::Oqf));
    let mut model = CostModel::default().with_cardinalities(db.cardinalities());
    let execs: Vec<cnb_engine::ExecResult> = res
        .plans
        .iter()
        .map(|p| {
            let exec = execute(&db, &p.query).expect("plan executes");
            cnb_engine::feed_cost_model(&exec.stats, &mut model);
            exec
        })
        .collect();
    let mut table = Vec::new();
    for (i, (p, exec)) in res.plans.iter().zip(&execs).enumerate() {
        let physical: Vec<String> = p.physical_used.iter().map(|s| s.to_string()).collect();
        table.push(vec![
            format!("{}", i + 1),
            secs(exec.stats.elapsed),
            format!("{}", exec.rows.len()),
            format!("{:.0}", model.cost(&p.query)),
            if physical.is_empty() {
                "(*) original query".into()
            } else {
                physical.join(", ")
            },
        ]);
    }
    out.push_str(&render_table(
        &format!(
            "Fig 11 (bottom): EC4 [{},{},{}] per-plan execution, {rows} fact rows — costs under measured stats",
            ec4.dims, ec4.views, ec4.indexed
        ),
        &[
            "Plan #",
            "Execution time (s)",
            "rows",
            "est. cost (measured stats)",
            "Views/indexes used",
        ],
        &table,
    ));
    out.push_str(&format!(
        "\nmeasured join selectivity: {:.6} ({} samples)\n",
        model.join_selectivity, model.selectivity_samples,
    ));
    out
}

/// Figure 12 (beyond the paper) — EC5 cyclic joins: FB vs OCS time-per-plan
/// over the cycle shapes (the wedge view doubles as the worst-case-optimal
/// building block), then the triangle executed on uniform vs skewed graphs
/// with cost-model feedback — the measured join selectivities differ by
/// distribution, which is exactly the signal the observed-cardinality loop
/// exists to capture.
pub fn fig12_ec5_cyclic(scale: Scale, edges: usize) -> String {
    let mut out = String::new();
    let shapes: &[(&str, Ec5)] = match scale {
        Scale::Paper => &[
            ("triangle", Ec5::new(3, true, false)),
            ("triangle+index", Ec5::new(3, true, true)),
            ("4-cycle", Ec5::new(4, true, false)),
            ("5-cycle", Ec5::new(5, true, false)),
        ],
        Scale::Smoke => &[("triangle", Ec5::new(3, true, false))],
    };
    let mut table = Vec::new();
    for (label, ec5) in shapes {
        let opt = ec5.optimizer();
        let q = ec5.cycle_query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({})", tpp(&r), r.plans.len()))
        };
        table.push(vec![
            (*label).to_string(),
            format!("{}", ec5.schema().all_constraints().len()),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    out.push_str(&render_table(
        &format!(
            "Fig 12 (top): time per plan [EC5 cyclic joins] — seconds (plan count); {} backchase thread(s)",
            effective_threads()
        ),
        &["shape", "#constraints", "FB", "OCS"],
        &table,
    ));

    // Uniform vs skewed execution with feedback, on the triangle.
    let ec5 = Ec5::triangle();
    let q = ec5.cycle_query();
    let res = ec5.optimizer().optimize(&q, &config(Strategy::Full));
    let mut table = Vec::new();
    for (label, dist) in [
        ("uniform", EdgeDist::Uniform),
        ("skewed γ=2", EdgeDist::Skewed(2.0)),
    ] {
        let db = ec5.generate(Ec5DataSpec {
            nodes: (edges / 5).max(2),
            edges,
            dist,
            ..Ec5DataSpec::default()
        });
        let mut model = CostModel::default().with_cardinalities(db.cardinalities());
        let original = execute(&db, &q).expect("original executes");
        cnb_engine::feed_cost_model(&original.stats, &mut model);
        // Best wedge plan under the measured model.
        let wedge_best = res
            .plans
            .iter()
            .filter(|p| !p.physical_used.is_empty())
            .map(|p| {
                let exec = execute(&db, &p.query).expect("plan executes");
                cnb_engine::feed_cost_model(&exec.stats, &mut model);
                exec.stats.elapsed
            })
            .min();
        // The generic-join operator on the same query: variable-at-a-time
        // leapfrog intersection, intermediates certified within N^(3/2).
        let wcoj = cnb_engine::execute_wcoj(&db, &q).expect("wcoj executes");
        assert_eq!(
            wcoj.rows.len(),
            original.rows.len(),
            "wcoj differs from the binary engine"
        );
        table.push(vec![
            label.to_string(),
            format!("{}", db.table(ec5.wedge()).len()),
            format!("{}", original.rows.len()),
            secs(original.stats.elapsed),
            cell(wedge_best.map(secs)),
            secs(wcoj.stats.elapsed),
            format!("{:.6}", model.join_selectivity),
        ]);
    }
    out.push_str(&render_table(
        &format!(
            "Fig 12 (bottom): triangle on {edges} edges, uniform vs skewed — measured feedback"
        ),
        &[
            "distribution",
            "|W| (wedges)",
            "triangles",
            "edge-plan time (s)",
            "best wedge-plan time (s)",
            "wcoj time (s)",
            "measured join selectivity",
        ],
        &table,
    ));
    out
}

/// §5.3.1 — "Number of plans in EC2": FB vs OQF vs OCS plan counts for the
/// paper's nine (s, c, v) parameter rows, side by side with the paper's
/// values.
pub fn table_plan_counts(scale: Scale) -> String {
    let rows_spec: &[(usize, usize, usize)] = &[
        (1, 3, 1),
        (1, 3, 2),
        (1, 4, 3),
        (1, 5, 1),
        (1, 5, 2),
        (1, 5, 3),
        (1, 5, 4),
        (2, 5, 1),
        (3, 5, 1),
    ];
    // Paper values for side-by-side comparison.
    let paper: &[(usize, usize, usize)] = &[
        (2, 2, 2),
        (4, 4, 3),
        (7, 7, 5),
        (2, 2, 2),
        (4, 4, 3),
        (7, 7, 5),
        (13, 13, 8),
        (4, 4, 4),
        (8, 8, 8),
    ];
    let limit = match scale {
        Scale::Paper => rows_spec.len(),
        Scale::Smoke => 2,
    };

    let mut table = Vec::new();
    for (&(s, c, v), &(pf, po, pc)) in rows_spec.iter().zip(paper).take(limit) {
        let ec2 = Ec2::new(s, c, v);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let count = |strategy| run(&opt, &q, strategy).map(|r| r.plans.len().to_string());
        table.push(vec![
            format!("{s}"),
            format!("{c}"),
            format!("{v}"),
            cell(count(Strategy::Full)),
            cell(count(Strategy::Oqf)),
            cell(count(Strategy::Ocs)),
            format!("{pf}/{po}/{pc}"),
        ]);
    }
    render_table(
        "Number of plans in EC2 (paper §5.3.1)",
        &["s", "c", "v", "FB", "OQF", "OCS", "paper FB/OQF/OCS"],
        &table,
    )
}
