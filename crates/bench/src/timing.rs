//! A tiny in-repo timing harness replacing external benchmark frameworks (the build environment
//! has no registry access).
//!
//! The protocol per benchmark: calibrate a batch size so one sample takes at
//! least [`MIN_SAMPLE`], warm up, collect N batched samples, report the
//! median/min/max per-iteration time as a markdown row. Median-of-N is robust
//! to the occasional scheduler hiccup without a full outlier-analysis machinery.
//!
//! Benches using it declare `harness = false` and just call
//! [`BenchGroup::bench`] from `main`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall-clock per measured sample; fast closures are batched up to
/// this granularity so `Instant` overhead stays negligible.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(50);

/// A named group of benchmarks rendered as one markdown table, mirroring the
/// `benchmark_group` shape the old benches used.
pub struct BenchGroup {
    name: String,
    samples: usize,
    rows: Vec<Vec<String>>,
}

impl BenchGroup {
    /// Starts a group; results print on [`BenchGroup::finish`].
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_string(),
            samples: 11,
            rows: Vec::new(),
        }
    }

    /// Overrides the sample count (default 11).
    pub fn sample_size(&mut self, samples: usize) -> &mut BenchGroup {
        self.samples = samples.max(3);
        self
    }

    /// Measures `f`, recording median/min/max per-iteration time.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) {
        // The first call may pay one-off lazy-init costs; keep it out of the
        // timed warmup window so it cannot skew the calibration average.
        black_box(f());

        // Warm up for a fixed budget so caches/allocator reach steady state.
        let warm_start = Instant::now();
        let mut warm_iters: u128 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= WARMUP {
                break;
            }
        }

        // Calibrate from the steady-state warmup rate (a cold first call can
        // run orders of magnitude slower and would undersize the batch): how
        // many iterations fill MIN_SAMPLE?
        let one = (warm_start.elapsed().as_nanos() / warm_iters).max(1);
        let batch = (MIN_SAMPLE.as_nanos() / one).clamp(1, 1_000_000) as usize;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed() / batch as u32
            })
            .collect();
        per_iter.sort();
        let median = median_of_sorted(&per_iter);
        self.rows.push(vec![
            label.to_string(),
            fmt_duration(median),
            fmt_duration(per_iter[0]),
            fmt_duration(*per_iter.last().expect("samples >= 3")),
            format!("{}×{batch}", self.samples),
        ]);
    }

    /// Prints the group's markdown table.
    pub fn finish(self) {
        crate::print_table(
            &format!("bench: {}", self.name),
            &["benchmark", "median/iter", "min", "max", "samples"],
            &self.rows,
        );
    }
}

/// Median of an already-sorted sample list. For an even count the true
/// median is *between* the two middle elements; `sorted[len / 2]` alone is
/// the upper one and biases the reported median high, so average the pair.
fn median_of_sorted(sorted: &[Duration]) -> Duration {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Human-readable duration with µs resolution for fast benches.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_a_row_per_call() {
        let mut g = BenchGroup::new("t");
        g.sample_size(3);
        g.bench("noop", || 1 + 1);
        g.bench("spin", || (0..100).sum::<u64>());
        assert_eq!(g.rows.len(), 2);
        assert!(g.rows.iter().all(|r| r.len() == 5));
    }

    #[test]
    fn median_is_midpoint_for_even_sample_counts() {
        let ms = Duration::from_millis(1);
        // Odd count: the middle element, exactly.
        assert_eq!(median_of_sorted(&[ms, 3 * ms, 100 * ms]), 3 * ms);
        // Even count: midpoint of the two middle elements — NOT the upper
        // one (the old `sorted[len / 2]` bug reported 100ms here).
        assert_eq!(median_of_sorted(&[ms, 2 * ms, 100 * ms, 200 * ms]), 51 * ms);
        // Two samples degenerate to their mean.
        assert_eq!(median_of_sorted(&[2 * ms, 4 * ms]), 3 * ms);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
    }
}
