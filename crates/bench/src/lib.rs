//! # cnb-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section (§5) — the
//! core routines live in [`figs`] so integration tests can smoke-run them —
//! plus micro-benchmarks on the in-repo [`timing`] harness (the build
//! environment has no registry access, so external benchmark frameworks are not available).
//!
//! Environment knobs:
//! * `CNB_TIMEOUT_SECS` — per-optimization wall-clock budget (default 120,
//!   the paper's 2-minute timeout). Points that exceed it print `—` like the
//!   paper's "missing bars".
//! * `CNB_ROWS` — dataset size for execution experiments (default 5000, the
//!   paper's value).
//! * `CNB_THREADS` — backchase worker threads (default: the machine's
//!   available parallelism). Plans, plan order, and `explored` counts are
//!   identical at every thread count; only wall-clock changes.

#![warn(missing_docs)]

pub mod figs;
pub mod timing;

use std::time::Duration;

use cnb_core::prelude::*;

/// The per-optimization timeout (paper: 2 minutes).
pub fn timeout() -> Duration {
    let secs = std::env::var("CNB_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_secs(secs)
}

/// Dataset size for execution experiments (paper: 5000).
pub fn rows() -> usize {
    std::env::var("CNB_ROWS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(5000)
}

/// An optimizer config with the harness timeout applied (figs. 6/7/8 and
/// the plan-count table all route through here). The backchase thread count
/// stays `0` = auto: `cnb_core::parallel::resolve_threads` is the single
/// parser of the `CNB_THREADS` knob (explicit > env > available
/// parallelism).
pub fn config(strategy: Strategy) -> OptimizerConfig {
    OptimizerConfig::with_strategy(strategy).timeout(timeout())
}

/// Formats a duration in seconds, with enough digits for sub-millisecond
/// measurements (our chase runs ~1000× faster than the paper's JVM).
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 0.01 {
        format!("{s:.3}")
    } else {
        format!("{s:.6}")
    }
}

/// Formats an optional measurement; `None` renders as the paper's missing
/// bar ("—" = timed out).
pub fn cell(v: Option<String>) -> String {
    v.unwrap_or_else(|| "—".to_string())
}

/// Renders a markdown table to a string.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}|\n",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    ));
    for r in rows {
        out.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    out
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, header, rows));
}

/// Runs one optimization, returning `None` on timeout (a "missing bar").
pub fn run(
    opt: &Optimizer,
    q: &cnb_ir::prelude::Query,
    strategy: Strategy,
) -> Option<OptimizeResult> {
    let res = opt.optimize(q, &config(strategy));
    if res.timed_out {
        None
    } else {
        Some(res)
    }
}

/// Time-per-plan in seconds — the paper's normalized §5.3.2 measure.
pub fn tpp(res: &OptimizeResult) -> f64 {
    if res.plans.is_empty() {
        f64::NAN
    } else {
        res.total_time.as_secs_f64() / res.plans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_renders_missing() {
        assert_eq!(cell(None), "—");
        assert_eq!(cell(Some("1.0".into())), "1.0");
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }
}
