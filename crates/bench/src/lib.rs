//! # cnb-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section (§5) — the
//! core routines live in [`figs`] so integration tests can smoke-run them —
//! plus micro-benchmarks on the in-repo [`timing`] harness (the build
//! environment has no registry access, so external benchmark frameworks are not available).
//!
//! Environment knobs:
//! * `CNB_TIMEOUT_SECS` — per-optimization wall-clock budget (default 120,
//!   the paper's 2-minute timeout). Points that exceed it print `—` like the
//!   paper's "missing bars".
//! * `CNB_ROWS` — dataset size for execution experiments (default 5000, the
//!   paper's value).
//! * `CNB_THREADS` — backchase worker threads (default: the machine's
//!   available parallelism). Plans, plan order, and `explored` counts are
//!   identical at every thread count; only wall-clock changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Measuring wall time is this crate's job; the workspace-wide clippy denial
// of `Instant::now`/`SystemTime::now` (see clippy.toml) does not apply here.
#![allow(clippy::disallowed_methods)]

pub mod figs;
pub mod serving;
pub mod timing;

use std::time::Duration;

use cnb_core::prelude::*;
use cnb_ir::prelude::{PathExpr, Var};

/// The congruence savepoint-churn workload, shared by
/// `benches/congruence.rs` (`save_rollback_churn/*`) and the
/// `record_backchase` binary's `micro` section so the committed
/// `BENCH_backchase.json` measures exactly what `cargo bench --bench
/// congruence` shows: a warm closure of `base_terms` lookup paths, cycled
/// through save → intern two fresh composite terms → two merges (with
/// congruence cascades) → rollback. Rollback restores the base byte-exactly,
/// so every cycle measures identical work.
pub struct ChurnRig {
    cong: Congruence,
    anchors: Vec<TermId>,
    base_terms: u32,
}

impl ChurnRig {
    /// Builds the warm base closure. `base_terms` must be at least 8 —
    /// [`ChurnRig::cycle`] rotates through 8 anchors.
    pub fn new(base_terms: u32) -> ChurnRig {
        assert!(base_terms >= 8, "ChurnRig needs at least 8 anchor terms");
        let mut cong = Congruence::new();
        let anchors: Vec<TermId> = (0..base_terms)
            .map(|i| cong.intern_path(&PathExpr::from(Var(i)).lookup_in("M").dot("A")))
            .collect();
        for pair in anchors.chunks(2) {
            if let [a, b] = pair {
                cong.merge(*a, *b);
            }
        }
        ChurnRig {
            cong,
            anchors,
            base_terms,
        }
    }

    /// One save/intern/merge/rollback cycle; `k` varies the fresh variable
    /// so consecutive cycles touch different anchors.
    pub fn cycle(&mut self, k: u32) -> usize {
        let k = k % 8;
        let sp = self.cong.save();
        let v = Var(self.base_terms + k);
        let t1 = self.cong.intern_path(&PathExpr::from(v).dot("A"));
        let t2 = self
            .cong
            .intern_path(&PathExpr::from(v).lookup_in("M").dot("B"));
        self.cong.merge(t1, t2);
        self.cong.merge(t1, self.anchors[k as usize]);
        self.cong.rollback(sp);
        self.cong.len()
    }
}

/// The per-optimization timeout (paper: 2 minutes).
pub fn timeout() -> Duration {
    let secs = std::env::var("CNB_TIMEOUT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(120);
    Duration::from_secs(secs)
}

/// Dataset size for execution experiments (paper: 5000).
pub fn rows() -> usize {
    std::env::var("CNB_ROWS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(5000)
}

/// An optimizer config with the harness timeout applied (figs. 6/7/8 and
/// the plan-count table all route through here). The backchase thread count
/// stays `0` = auto: `cnb_core::parallel::resolve_threads` is the single
/// parser of the `CNB_THREADS` knob (explicit > env > available
/// parallelism).
pub fn config(strategy: Strategy) -> OptimizerConfig {
    OptimizerConfig::with_strategy(strategy).timeout(timeout())
}

/// Formats a duration in seconds, with enough digits for sub-millisecond
/// measurements (our chase runs ~1000× faster than the paper's JVM).
pub fn secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 0.01 {
        format!("{s:.3}")
    } else {
        format!("{s:.6}")
    }
}

/// Formats an optional measurement; `None` renders as the paper's missing
/// bar ("—" = timed out).
pub fn cell(v: Option<String>) -> String {
    v.unwrap_or_else(|| "—".to_string())
}

/// Renders a markdown table to a string.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n### {title}\n\n"));
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}|\n",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    ));
    for r in rows {
        out.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    out
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, header, rows));
}

/// Runs one optimization, returning `None` on timeout (a "missing bar").
pub fn run(
    opt: &Optimizer,
    q: &cnb_ir::prelude::Query,
    strategy: Strategy,
) -> Option<OptimizeResult> {
    let res = opt.optimize(q, &config(strategy));
    if res.timed_out {
        None
    } else {
        Some(res)
    }
}

/// Time-per-plan in seconds — the paper's normalized §5.3.2 measure.
pub fn tpp(res: &OptimizeResult) -> f64 {
    if res.plans.is_empty() {
        f64::NAN
    } else {
        res.total_time.as_secs_f64() / res.plans.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_renders_missing() {
        assert_eq!(cell(None), "—");
        assert_eq!(cell(Some("1.0".into())), "1.0");
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }
}
