//! Figure 7 — time per generated plan on EC2, FB vs OQF vs OCS, over the
//! paper's [#views per star, #stars, star size] grid. FB cells hit the
//! timeout first; OCS is fastest (at the price of completeness — see the
//! §5.3.1 plan-count table).

use cnb_bench::figs::{fig7_tpp_ec2, Scale};

fn main() {
    print!("{}", fig7_tpp_ec2(Scale::Paper));
}
