//! Figure 7 — time per generated plan on EC2, FB vs OQF vs OCS, over the
//! paper's [#views per star, #stars, star size] grid. FB cells hit the
//! timeout first; OCS is fastest (at the price of completeness — see the
//! §5.3.1 plan-count table).

use cnb_bench::{cell, print_table, run, tpp};
use cnb_core::prelude::*;
use cnb_workloads::Ec2;

fn main() {
    // The paper's 22 x-axis points, as [v, s, c].
    let points: &[(usize, usize, usize)] = &[
        (1, 1, 5),
        (1, 2, 3),
        (1, 2, 5),
        (1, 3, 2),
        (1, 3, 3),
        (1, 3, 4),
        (1, 3, 5),
        (1, 4, 4),
        (2, 1, 5),
        (2, 2, 3),
        (2, 2, 4),
        (2, 2, 5),
        (2, 3, 5),
        (2, 4, 4),
        (3, 1, 4),
        (3, 1, 5),
        (3, 2, 4),
        (3, 2, 5),
        (3, 3, 4),
        (3, 3, 5),
        (4, 1, 5),
        (4, 2, 5),
    ];
    let mut table = Vec::new();
    for &(v, s, c) in points {
        let ec2 = Ec2::new(s, c, v);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({})", tpp(&r), r.plans.len()))
        };
        table.push(vec![
            format!("[{v},{s},{c}]"),
            format!("{}", ec2.query_size()),
            format!("{}", ec2.constraint_count()),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Oqf)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    print_table(
        "Fig 7: time per plan [EC2] — seconds (plan count); — = timeout",
        &["[v,s,c]", "query size", "#constraints", "FB", "OQF", "OCS"],
        &table,
    );
}
