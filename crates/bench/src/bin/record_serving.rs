//! Records the serving-path trajectory as JSON (written to
//! `BENCH_serving.json` by `scripts/bench_record.sh`): closed-loop QPS and
//! p50/p95/p99 per-request latency for each EC1–EC5 parameterized serving
//! mix plus the pooled mix aggregate, at 1/2/4 executor threads, with the
//! plan-cache hit rate per point. The measured window is warm (one cold
//! C&B optimization per family plants the cache and is excluded from the
//! window but included in the hit-rate denominator), so the numbers are
//! the "preprocess once, answer many" regime the serving path exists for.
//!
//! The `open_loop` section is the pressure picture: per family, scheduled
//! arrivals at 0.5/0.9/1.2× the measured capacity against a bounded
//! backlog, with per-request deadlines and seeded fault injection —
//! shed/expired/faulted/retry counts and p50/p95/p99 sojourn per offered
//! load (see `cnb_bench::serving::run_open_loop` for the measured-service
//! + virtual-time-arrival methodology).

// Measuring wall time is this binary's job (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use cnb_bench::serving::{run_open_loop_suite, run_suite, OpenLoopConfig, ServingPoint};
use cnb_workloads::DataScale;

fn main() {
    let scale = DataScale::new(cnb_bench::rows().min(2000), 7);
    let requests = std::env::var("CNB_SERVING_REQUESTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(200);
    let sweep = [1usize, 2, 4];
    let mut points: Vec<ServingPoint> = Vec::new();
    for threads in sweep {
        points.extend(run_suite(scale, requests, threads));
    }

    let recorded_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("{{");
    println!("  \"bench\": \"serving\",");
    println!("  \"recorded_unix\": {recorded_unix},");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"scale_rows\": {},", scale.rows);
    println!("  \"requests_per_family\": {requests},");
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{\"label\": \"{}\", \"threads\": {}, \"requests\": {}, \"qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}, \
             \"rows_total\": {}}}{comma}",
            p.label,
            p.threads,
            p.requests,
            p.qps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.cache_hits,
            p.cache_misses,
            p.hit_rate,
            p.rows_total
        );
    }
    println!("  ],");

    let open_cfg = OpenLoopConfig {
        requests: requests.min(200),
        ..OpenLoopConfig::default()
    };
    let open_threads = 4usize;
    let open_points = run_open_loop_suite(scale, open_threads, &open_cfg);
    println!("  \"open_loop\": {{");
    println!(
        "    \"deadline_ms\": {}, \"max_retries\": {}, \"fail_rate\": {}, \
         \"fault_seed\": {}, \"backlog_cap\": {}, \"threads\": {open_threads},",
        open_cfg.deadline.as_millis(),
        open_cfg.max_retries,
        open_cfg.fail_rate,
        open_cfg.fault_seed,
        open_cfg.backlog_cap
    );
    println!("    \"points\": [");
    for (i, p) in open_points.iter().enumerate() {
        let comma = if i + 1 < open_points.len() { "," } else { "" };
        assert_eq!(
            p.served + p.shed + p.expired + p.faulted,
            p.requests,
            "{}: open-loop buckets must reconcile",
            p.label
        );
        println!(
            "      {{\"label\": \"{}\", \"utilization\": {:.2}, \"offered_qps\": {:.1}, \
             \"requests\": {}, \"served\": {}, \"shed\": {}, \"expired\": {}, \
             \"faulted\": {}, \"retries\": {}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}}}{comma}",
            p.label,
            p.utilization,
            p.offered_qps,
            p.requests,
            p.served,
            p.shed,
            p.expired,
            p.faulted,
            p.retries,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms
        );
    }
    println!("    ]");
    println!("  }}");
    println!("}}");
}
