//! Figure 10 — the benefit of optimization: Redux and ReduxFirst time
//! reductions for growing EC2 instances.
//!
//! ```text
//! Redux      = (ExT − (ExTBest + OptT))          / ExT
//! ReduxFirst = (ExT − (ExTBest + OptT/#plans))   / ExT
//! ```
//!
//! where `OptT` is C&B (OQF) optimization time, `ExT` the execution time of
//! the original query and `ExTBest` the execution time of the best generated
//! plan. Negative values mean optimization did not pay off at this dataset
//! scale (the paper does not display them); our in-memory engine executes
//! the 5 000-tuple dataset orders of magnitude faster than 1999 DB2, so the
//! paper's shape appears at larger `CNB_ROWS`.

use cnb_bench::figs::{fig10_redux, Scale};
use cnb_bench::rows;

fn main() {
    print!("{}", fig10_redux(Scale::Paper, rows()));
}
