//! Figure 10 — the benefit of optimization: Redux and ReduxFirst time
//! reductions for growing EC2 instances.
//!
//! ```text
//! Redux      = (ExT − (ExTBest + OptT))          / ExT
//! ReduxFirst = (ExT − (ExTBest + OptT/#plans))   / ExT
//! ```
//!
//! where `OptT` is C&B (OQF) optimization time, `ExT` the execution time of
//! the original query and `ExTBest` the execution time of the best generated
//! plan. Negative values mean optimization did not pay off at this dataset
//! scale (the paper does not display them); our in-memory engine executes
//! the 5 000-tuple dataset orders of magnitude faster than 1999 DB2, so the
//! paper's shape appears at larger `CNB_ROWS`.

use cnb_bench::{config, print_table, rows, secs};
use cnb_core::prelude::*;
use cnb_engine::execute;
use cnb_workloads::{ec2::Ec2DataSpec, Ec2};

fn main() {
    // The paper's x-axis: [#stars, #corners per star, #views per star].
    let points: &[(usize, usize, usize)] = &[
        (2, 2, 1),
        (2, 3, 1),
        (2, 4, 1),
        (3, 2, 1),
        (3, 3, 1),
        (3, 4, 1),
        (2, 3, 2),
        (2, 4, 2),
        (3, 3, 2),
        (2, 4, 3),
        (3, 4, 2),
    ];
    let n_rows = rows();
    let mut table = Vec::new();
    for &(s, c, v) in points {
        let ec2 = Ec2::new(s, c, v);
        let db = ec2.generate(Ec2DataSpec {
            rows: n_rows,
            ..Ec2DataSpec::default()
        });
        let q = ec2.query();
        let opt = Optimizer::new(ec2.schema());
        let res = opt.optimize(&q, &config(Strategy::Oqf));
        if res.timed_out || res.plans.is_empty() {
            table.push(vec![format!("[{s},{c},{v}]"), "—".into(), "—".into(), "—".into(), "—".into(), "—".into()]);
            continue;
        }
        let opt_t = res.total_time.as_secs_f64();
        let ex_t = execute(&db, &q).expect("original executes").stats.elapsed.as_secs_f64();
        // Execute every plan; ExTBest is the fastest (the original query is
        // always among the plans, so ExTBest <= ExT up to noise).
        let ex_best = res
            .plans
            .iter()
            .map(|p| execute(&db, &p.query).expect("plan executes").stats.elapsed.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        let redux = (ex_t - (ex_best + opt_t)) / ex_t;
        let redux_first = (ex_t - (ex_best + opt_t / res.plans.len() as f64)) / ex_t;
        table.push(vec![
            format!("[{s},{c},{v}]"),
            secs(std::time::Duration::from_secs_f64(opt_t)),
            secs(std::time::Duration::from_secs_f64(ex_t)),
            secs(std::time::Duration::from_secs_f64(ex_best)),
            format!("{:.0}%", redux * 100.0),
            format!("{:.0}%", redux_first * 100.0),
        ]);
    }
    print_table(
        &format!("Fig 10: time reduction [EC2], {n_rows} tuples/relation"),
        &["[s,c,v]", "OptT (s)", "ExT (s)", "ExTBest (s)", "Redux", "ReduxFirst"],
        &table,
    );
}
