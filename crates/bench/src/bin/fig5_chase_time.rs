//! Figure 5 — time to chase as schema/query parameters grow, for all three
//! experimental configurations. The paper's claim: the (efficiently
//! implemented) chase is cheap even with 15+ joins and 15+ constraints.

use cnb_bench::{print_table, secs};
use cnb_core::prelude::*;
use cnb_workloads::{Ec1, Ec2, Ec3};
use std::time::Instant;

fn chase_time(q: &cnb_ir::prelude::Query, cs: &[cnb_ir::prelude::Constraint]) -> (f64, usize) {
    let start = Instant::now();
    let (db, stats) = chase_query(q, cs, ChaseConfig::default());
    assert!(!stats.truncated, "chase must reach a fixpoint");
    (start.elapsed().as_secs_f64(), db.query.from.len())
}

fn main() {
    // EC1 (fig. 5 left): n = 10 chain relations; vary the number of indexes
    // m = n + j by adding secondary indexes.
    let mut t1 = Vec::new();
    for j in [0usize, 3, 5, 7, 9] {
        let ec1 = Ec1::new(10, j);
        let cs = ec1.schema().all_constraints();
        let (t, arity) = chase_time(&ec1.query(), &cs);
        t1.push(vec![
            format!("{}", ec1.index_count()),
            format!("{}", cs.len()),
            secs(std::time::Duration::from_secs_f64(t)),
            format!("{arity}"),
        ]);
    }
    print_table(
        "Fig 5 (left): time to chase [EC1], 10-relation chain query",
        &["#indexes", "#constraints", "chase time (s)", "universal plan size"],
        &t1,
    );

    // EC2 (fig. 5 middle): s = 3 stars; query size s(c+1); two constraint
    // series (6 views + 3 keys = 15, 9 views + 3 keys = 21).
    let mut t2 = Vec::new();
    for &(v, label) in &[(2usize, "6 views+3 keys = 15"), (3usize, "9 views+3 keys = 21")] {
        for c in [3usize, 4, 5, 6, 7] {
            if v + 1 > c {
                continue;
            }
            let ec2 = Ec2::new(3, c, v);
            let cs = ec2.schema().all_constraints();
            let (t, arity) = chase_time(&ec2.query(), &cs);
            t2.push(vec![
                label.to_string(),
                format!("{}", ec2.query_size()),
                format!("{}", cs.len()),
                secs(std::time::Duration::from_secs_f64(t)),
                format!("{arity}"),
            ]);
        }
    }
    print_table(
        "Fig 5 (middle): time to chase [EC2], 3 stars, growing star size",
        &["series", "query size", "#constraints", "chase time (s)", "universal plan size"],
        &t2,
    );

    // EC3 (fig. 5 right): vary the number of classes 2..10; inverse
    // constraints (2 per hop) plus ASR constraints (2 per ASR).
    let mut t3 = Vec::new();
    for n in [2usize, 4, 6, 8, 10] {
        let ec3 = Ec3::new(n, (n - 1) / 2);
        let cs = ec3.schema().all_constraints();
        let (t, arity) = chase_time(&ec3.query(), &cs);
        t3.push(vec![
            format!("{n}"),
            format!("{}", cs.len()),
            secs(std::time::Duration::from_secs_f64(t)),
            format!("{arity}"),
        ]);
    }
    print_table(
        "Fig 5 (right): time to chase [EC3], full navigation query",
        &["#classes", "#constraints", "chase time (s)", "universal plan size"],
        &t3,
    );
}
