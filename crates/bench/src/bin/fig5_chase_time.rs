//! Figure 5 — time to chase as schema/query parameters grow, for all three
//! experimental configurations. The paper's claim: the (efficiently
//! implemented) chase is cheap even with 15+ joins and 15+ constraints.

use cnb_bench::figs::{fig5_chase_time, Scale};

fn main() {
    print!("{}", fig5_chase_time(Scale::Paper));
}
