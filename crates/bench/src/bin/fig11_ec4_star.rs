//! Figure 11 (beyond the paper) — the EC4 TPC-style star schema: FB vs OQF
//! vs OCS over a `[#dims, #views, #indexed-FKs]` grid, plus per-plan
//! execution detail with cost-model feedback (fig. 9's measured-statistics
//! loop on the star workload). `CNB_ROWS` sets the fact-table size.

use cnb_bench::figs::{fig11_ec4_star, Scale};
use cnb_bench::rows;

fn main() {
    let rows = rows();
    eprintln!("generating star dataset: {rows} fact rows, 60% per-dimension selectivity ...");
    print!("{}", fig11_ec4_star(Scale::Paper, rows));
}
