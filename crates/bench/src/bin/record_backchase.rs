//! Records the backchase perf trajectory as JSON (written to
//! `BENCH_backchase.json` by `scripts/bench_record.sh`): full-backchase
//! wall-clock on fig. 6/7/11/12 workloads at 1/2/4 worker threads, with plan and
//! explored-subquery counts as a determinism cross-check — the counts must
//! be identical across the thread sweep, only the timing may move — plus a
//! `micro` object with two sections: `micro.congruence` (savepoint churn:
//! intern + merge + rollback, the backchase hot-loop shape) and
//! `micro.execution` (batched vs. tuple-at-a-time join throughput on the
//! EC1 chain workload — the batched path must not be slower), plus a
//! `wcoj` array: the generic-join operator vs the best wedge-view plan on
//! the EC5 triangle, uniform and skewed — on the skewed point the wedge
//! intermediate blows past the AGM bound and the WCOJ time must win.

// Measuring wall time is this binary's job (see clippy.toml).
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use cnb_core::prelude::*;
use cnb_engine::datagen::EdgeDist;
use cnb_workloads::ec5::Ec5DataSpec;
use cnb_workloads::{Ec1, Ec2, Ec3, Ec4, Ec5, Workload};

struct Point {
    workload: &'static str,
    threads: usize,
    median_secs: f64,
    plans: usize,
    explored: usize,
}

fn measure(
    workload: &'static str,
    opt: &Optimizer,
    q: &cnb_ir::prelude::Query,
    threads: usize,
    reps: usize,
) -> Point {
    let mut cfg = OptimizerConfig::with_strategy(Strategy::Full).timeout(cnb_bench::timeout());
    cfg.backchase.threads = threads;
    let mut times: Vec<f64> = Vec::new();
    let (mut plans, mut explored) = (0usize, 0usize);
    for _ in 0..reps {
        let start = Instant::now();
        let res = opt.optimize(q, &cfg);
        times.push(start.elapsed().as_secs_f64());
        plans = res.plans.len();
        explored = res.explored;
    }
    times.sort_by(f64::total_cmp);
    Point {
        workload,
        threads,
        median_secs: times[times.len() / 2],
        plans,
        explored,
    }
}

/// Median seconds for `iters` executions of the EC1 chain query (the same
/// workload `cargo bench --bench execution` reports as `ec1_chain_*`),
/// through the batched engine or the tuple-at-a-time oracle.
fn execution_micro_secs(
    db: &cnb_engine::Database,
    q: &cnb_ir::prelude::Query,
    batched: bool,
    iters: u32,
    reps: usize,
) -> f64 {
    let mut times: Vec<f64> = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            let res = if batched {
                cnb_engine::execute(db, q)
            } else {
                cnb_engine::execute_legacy(db, q)
            };
            std::hint::black_box(res.expect("EC1 executes").rows.len());
        }
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median seconds for `iters` savepoint-churn cycles ([`cnb_bench::ChurnRig`],
/// the same workload `cargo bench --bench congruence` reports as
/// `save_rollback_churn/*`).
fn congruence_churn_secs(base_terms: u32, iters: u32, reps: usize) -> f64 {
    let mut rig = cnb_bench::ChurnRig::new(base_terms);
    let mut times: Vec<f64> = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        for k in 0..iters {
            std::hint::black_box(rig.cycle(k));
        }
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    let reps = 3;
    let sweep = [1usize, 2, 4];
    let mut points: Vec<Point> = Vec::new();

    // Fig. 6 (right): EC1 chain with secondary indexes.
    let ec1 = Ec1::new(4, 2);
    let (q, opt) = (ec1.query(), Optimizer::new(ec1.schema()));
    for t in sweep {
        points.push(measure("ec1_4_2", &opt, &q, t, reps));
    }

    // Fig. 7: EC2 one star, 4 corners, 2 overlapping views.
    let ec2 = Ec2::new(1, 4, 2);
    let (q, opt) = (ec2.query(), Optimizer::new(ec2.schema()));
    for t in sweep {
        points.push(measure("ec2_1_4_2", &opt, &q, t, reps));
    }

    // Fig. 6 (left): EC3 navigation, 3 classes.
    let ec3 = Ec3::new(3, 0);
    let (q, opt) = (ec3.query(), Optimizer::new(ec3.schema()));
    for t in sweep {
        points.push(measure("ec3_3", &opt, &q, t, reps));
    }

    // Fig. 11: EC4 star schema — 4 dimensions, 3 views, 2 indexed FKs.
    let ec4 = Ec4::new(4, 3, 2);
    let (q, opt) = (Workload::query(&ec4), ec4.optimizer());
    for t in sweep {
        points.push(measure("ec4_4_3_2", &opt, &q, t, reps));
    }

    // Fig. 12: EC5 — the indexed triangle (wedge view + source index).
    let ec5 = Ec5::new(3, true, true);
    let (q, opt) = (ec5.cycle_query(), ec5.optimizer());
    for t in sweep {
        points.push(measure("ec5_tri_wedge_idx", &opt, &q, t, reps));
    }

    let recorded_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("{{");
    println!("  \"bench\": \"backchase\",");
    println!("  \"strategy\": \"FB\",");
    println!("  \"recorded_unix\": {recorded_unix},");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"reps\": {reps},");
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"median_secs\": {:.6}, \"plans\": {}, \"explored\": {}}}{comma}",
            p.workload, p.threads, p.median_secs, p.plans, p.explored
        );
    }
    println!("  ],");

    // WCOJ vs the best wedge plan: the EC5 triangle on uniform and skewed
    // edge tables. Skew concentrates wedges on hub nodes, blowing the
    // binary plan's intermediate past the N^(3/2) bound the generic join
    // is certified by — the skewed point is where wcoj must win.
    println!("  \"wcoj\": [");
    let ec5 = Ec5::triangle();
    let q = ec5.cycle_query();
    let cfg = OptimizerConfig::with_strategy(Strategy::Full).timeout(cnb_bench::timeout());
    let res = ec5.optimizer().optimize(&q, &cfg);
    let wcoj_edges = 1200usize;
    let dists = [
        ("uniform", EdgeDist::Uniform),
        ("skewed", EdgeDist::Skewed(2.0)),
    ];
    for (i, (label, dist)) in dists.iter().enumerate() {
        let db = ec5.generate(Ec5DataSpec {
            nodes: (wcoj_edges / 5).max(2),
            edges: wcoj_edges,
            dist: *dist,
            ..Ec5DataSpec::default()
        });
        let mut wcoj_times: Vec<f64> = Vec::new();
        let mut rows = 0usize;
        for _ in 0..reps {
            let start = Instant::now();
            let r = cnb_engine::execute_wcoj(&db, &q).expect("wcoj executes");
            wcoj_times.push(start.elapsed().as_secs_f64());
            rows = r.rows.len();
        }
        wcoj_times.sort_by(f64::total_cmp);
        let wedge_best = res
            .plans
            .iter()
            .filter(|p| !p.physical_used.is_empty())
            .map(|p| {
                let mut times: Vec<f64> = Vec::new();
                for _ in 0..reps {
                    let start = Instant::now();
                    let r = cnb_engine::execute(&db, &p.query).expect("wedge plan executes");
                    times.push(start.elapsed().as_secs_f64());
                    // Answer multiplicity differs (the view dedups wedges);
                    // set-equality is the differential suite's job.
                    std::hint::black_box(r.rows.len());
                }
                times.sort_by(f64::total_cmp);
                times[times.len() / 2]
            })
            .fold(f64::INFINITY, f64::min);
        let comma = if i + 1 < dists.len() { "," } else { "" };
        println!(
            "    {{\"name\": \"ec5_tri_wcoj/{label}\", \"edges\": {wcoj_edges}, \"rows\": {rows}, \"wcoj_median_secs\": {:.6}, \"best_wedge_median_secs\": {wedge_best:.6}}}{comma}",
            wcoj_times[wcoj_times.len() / 2]
        );
    }
    println!("  ],");
    println!("  \"micro\": {{");
    println!("    \"congruence\": [");
    let churn_iters = 10_000u32;
    let churn_bases = [64u32, 512];
    for (i, base) in churn_bases.into_iter().enumerate() {
        let secs = congruence_churn_secs(base, churn_iters, reps);
        let comma = if i + 1 < churn_bases.len() { "," } else { "" };
        println!(
            "      {{\"name\": \"congruence_churn/{base}\", \"iters\": {churn_iters}, \"median_secs\": {secs:.6}}}{comma}"
        );
    }
    println!("    ],");
    println!("    \"execution\": [");
    let ec1 = Ec1::new(3, 1);
    let (db, q) = (ec1.generate(2000, 0.05, 7), ec1.query());
    let exec_iters = 20u32;
    let batched = execution_micro_secs(&db, &q, true, exec_iters, reps);
    let legacy = execution_micro_secs(&db, &q, false, exec_iters, reps);
    println!(
        "      {{\"name\": \"ec1_3_1_batched\", \"iters\": {exec_iters}, \"median_secs\": {batched:.6}}},"
    );
    println!(
        "      {{\"name\": \"ec1_3_1_legacy\", \"iters\": {exec_iters}, \"median_secs\": {legacy:.6}}}"
    );
    println!("    ]");
    println!("  }}");
    println!("}}");
}
