//! §5.3.1 — "Number of plans in EC2": FB vs OQF vs OCS plan counts for the
//! paper's nine (s, c, v) parameter rows.

use cnb_bench::{cell, print_table, run};
use cnb_core::prelude::*;
use cnb_workloads::Ec2;

fn main() {
    let rows_spec: &[(usize, usize, usize)] = &[
        (1, 3, 1),
        (1, 3, 2),
        (1, 4, 3),
        (1, 5, 1),
        (1, 5, 2),
        (1, 5, 3),
        (1, 5, 4),
        (2, 5, 1),
        (3, 5, 1),
    ];
    // Paper values for side-by-side comparison.
    let paper: &[(usize, usize, usize)] = &[
        (2, 2, 2),
        (4, 4, 3),
        (7, 7, 5),
        (2, 2, 2),
        (4, 4, 3),
        (7, 7, 5),
        (13, 13, 8),
        (4, 4, 4),
        (8, 8, 8),
    ];

    let mut table = Vec::new();
    for (i, &(s, c, v)) in rows_spec.iter().enumerate() {
        let ec2 = Ec2::new(s, c, v);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let count = |strategy| run(&opt, &q, strategy).map(|r| r.plans.len().to_string());
        let (pf, po, pc) = paper[i];
        table.push(vec![
            format!("{s}"),
            format!("{c}"),
            format!("{v}"),
            cell(count(Strategy::Full)),
            cell(count(Strategy::Oqf)),
            cell(count(Strategy::Ocs)),
            format!("{pf}/{po}/{pc}"),
        ]);
    }
    print_table(
        "Number of plans in EC2 (paper §5.3.1)",
        &["s", "c", "v", "FB", "OQF", "OCS", "paper FB/OQF/OCS"],
        &table,
    );
}
