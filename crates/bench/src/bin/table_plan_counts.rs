//! §5.3.1 — "Number of plans in EC2": FB vs OQF vs OCS plan counts for the
//! paper's nine (s, c, v) parameter rows.

use cnb_bench::figs::{table_plan_counts, Scale};

fn main() {
    print!("{}", table_plan_counts(Scale::Paper));
}
