//! Figure 8 — effect of stratification granularity on optimization time:
//! fixed queries, varying how many natural strata are merged per pipeline
//! stage. Stratum size 1 = OCS; merging everything approaches FB. The paper
//! observes an exponential reduction as strata shrink.

use cnb_bench::figs::{fig8_stratification, Scale};

fn main() {
    print!("{}", fig8_stratification(Scale::Paper));
}
