//! Figure 8 — effect of stratification granularity on optimization time:
//! fixed queries, varying how many natural strata are merged per pipeline
//! stage. Stratum size 1 = OCS; merging everything approaches FB. The paper
//! observes an exponential reduction as strata shrink.

use cnb_bench::{cell, print_table};
use cnb_core::prelude::*;
use cnb_workloads::{Ec2, Ec3};

fn normalized_times(
    opt: &Optimizer,
    q: &cnb_ir::prelude::Query,
    group_sizes: &[usize],
) -> Vec<Option<f64>> {
    let mut times = Vec::new();
    for &g in group_sizes {
        let mut cfg = cnb_bench::config(Strategy::Ocs);
        cfg.stratum_group_size = Some(g);
        let res = opt.optimize(q, &cfg);
        times.push(if res.timed_out {
            None
        } else {
            Some(res.total_time.as_secs_f64())
        });
    }
    // Normalize by the stratum-size-1 time (the paper's y-axis).
    let base = times[0].unwrap_or(1.0);
    times
        .into_iter()
        .map(|t| t.map(|t| t / base.max(1e-9)))
        .collect()
}

fn main() {
    let group_sizes = [1usize, 2, 3, 4];
    let mut table = Vec::new();

    for (label, n) in [("EC3 with 5 classes", 5usize), ("EC3 with 6 classes", 6)] {
        let ec3 = Ec3::new(n, 0);
        let opt = Optimizer::new(ec3.schema());
        let q = ec3.query();
        let norm = normalized_times(&opt, &q, &group_sizes);
        let mut row = vec![label.to_string()];
        row.extend(norm.into_iter().map(|t| cell(t.map(|t| format!("{t:.2}")))));
        table.push(row);
    }
    {
        let ec2 = Ec2::new(3, 3, 1);
        let opt = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let norm = normalized_times(&opt, &q, &group_sizes);
        let mut row = vec!["EC2 [3,3,1]".to_string()];
        row.extend(norm.into_iter().map(|t| cell(t.map(|t| format!("{t:.2}")))));
        table.push(row);
    }

    print_table(
        "Fig 8: normalized optimization time vs stratum size (1 = OCS)",
        &["configuration", "size 1", "size 2", "size 3", "size 4"],
        &table,
    );
}
