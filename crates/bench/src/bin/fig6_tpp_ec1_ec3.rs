//! Figure 6 — time per generated plan, FB vs OQF vs OCS:
//! right panel: EC1 over [#relations, #secondary indexes];
//! left panel: EC3 over the number of traversed classes (where OQF
//! degenerates into FB because inverse-constraint images overlap).

use cnb_bench::{cell, print_table, run, tpp};
use cnb_core::prelude::*;
use cnb_workloads::{Ec1, Ec3};

fn main() {
    // EC1 grid: the paper's x-axis [3,0] [3,1] [3,2] [3,3] [4,0] ... [5,2].
    let mut t1 = Vec::new();
    for &(n, j) in &[
        (3usize, 0usize),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 0),
        (4, 1),
        (4, 2),
        (4, 3),
        (5, 0),
        (5, 1),
        (5, 2),
    ] {
        let ec1 = Ec1::new(n, j);
        let opt = Optimizer::new(ec1.schema());
        let q = ec1.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({} plans)", tpp(&r), r.plans.len()))
        };
        t1.push(vec![
            format!("[{n},{j}]"),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Oqf)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    print_table(
        "Fig 6 (right): time per plan [EC1] — seconds (plan count)",
        &["[#relations,#secondary]", "FB", "OQF", "OCS"],
        &t1,
    );

    // EC3: classes 2..6; FB(=OQF) vs OCS. Missing FB cells above the
    // timeout reproduce the paper's missing bars.
    let mut t3 = Vec::new();
    for n in 2usize..=6 {
        let ec3 = Ec3::new(n, 0);
        let opt = Optimizer::new(ec3.schema());
        let q = ec3.query();
        let fmt = |strategy| {
            run(&opt, &q, strategy).map(|r| format!("{:.4} ({} plans)", tpp(&r), r.plans.len()))
        };
        t3.push(vec![
            format!("{n}"),
            cell(fmt(Strategy::Full)),
            cell(fmt(Strategy::Ocs)),
        ]);
    }
    print_table(
        "Fig 6 (left): time per plan [EC3] — seconds (plan count)",
        &["#classes traversed", "FB (=OQF)", "OCS"],
        &t3,
    );
}
