//! Figure 6 — time per generated plan, FB vs OQF vs OCS:
//! right panel: EC1 over [#relations, #secondary indexes];
//! left panel: EC3 over the number of traversed classes (where OQF
//! degenerates into FB because inverse-constraint images overlap).

use cnb_bench::figs::{fig6_tpp_ec1_ec3, Scale};

fn main() {
    print!("{}", fig6_tpp_ec1_ec3(Scale::Paper));
}
