//! Figure 9 — detail of the plans generated for one EC2 instance
//! (3 stars, 2 corner relations per star, 1 view per star → 8 plans), with
//! the execution time of each plan on the generated dataset, the views used
//! and the corner relations used — the paper's fig. 9 table.

use cnb_bench::{config, print_table, rows, secs};
use cnb_core::prelude::*;
use cnb_engine::execute;
use cnb_workloads::{ec2::Ec2DataSpec, Ec2};

fn main() {
    let ec2 = Ec2::new(3, 2, 1);
    let spec = Ec2DataSpec {
        rows: rows(),
        ..Ec2DataSpec::default()
    };
    eprintln!(
        "generating dataset: {} tuples/relation, 4% corner / 2% chain selectivity ...",
        spec.rows
    );
    let db = ec2.generate(spec);
    let q = ec2.query();
    let opt = Optimizer::new(ec2.schema());
    let res = opt.optimize(&q, &config(Strategy::Oqf));
    println!(
        "# Stars: 3, # Corners per star: 2, # Views per star: 1. {} plans generated. Time to generate all plans: {}s",
        res.plans.len(),
        secs(res.total_time)
    );

    let mut table = Vec::new();
    for (i, p) in res.plans.iter().enumerate() {
        let exec = execute(&db, &p.query).expect("plan executes");
        let views: Vec<String> = p.physical_used.iter().map(|s| s.to_string()).collect();
        let corners: Vec<String> = p
            .query
            .from
            .iter()
            .filter_map(|b| match &b.range {
                cnb_ir::prelude::Range::Name(s) if s.as_str().starts_with('S') => {
                    Some(s.to_string())
                }
                _ => None,
            })
            .collect();
        let original = if views.is_empty() { " (*) original query" } else { "" };
        table.push(vec![
            format!("{}", i + 1),
            secs(exec.stats.elapsed),
            format!("{}", exec.rows.len()),
            views.join(", "),
            format!("{}{}", corners.join(", "), original),
        ]);
    }
    print_table(
        "Fig 9: plans for EC2 [3 stars, 2 corners, 1 view per star]",
        &["Plan #", "Execution time (s)", "rows", "Views used", "Corner relations used"],
        &table,
    );
}
