//! Figure 9 — detail of the plans generated for one EC2 instance
//! (3 stars, 2 corner relations per star, 1 view per star → 8 plans), with
//! the execution time of each plan on the generated dataset, the views used
//! and the corner relations used — the paper's fig. 9 table.

use cnb_bench::figs::fig9_plan_detail;
use cnb_bench::rows;

fn main() {
    let rows = rows();
    eprintln!("generating dataset: {rows} tuples/relation, 4% corner / 2% chain selectivity ...");
    print!("{}", fig9_plan_detail(rows));
}
