//! Figure 12 (beyond the paper) — EC5 cyclic joins over an edge relation:
//! FB vs OCS across the cycle shapes (wedge view as the rewrite target),
//! plus the triangle executed on uniform vs skewed graphs with cost-model
//! feedback. `CNB_ROWS` sets the edge count.

use cnb_bench::figs::{fig12_ec5_cyclic, Scale};
use cnb_bench::rows;

fn main() {
    let edges = rows();
    eprintln!("generating edge tables: {edges} edges, uniform and skewed ...");
    print!("{}", fig12_ec5_cyclic(Scale::Paper, edges));
}
