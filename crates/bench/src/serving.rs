//! The closed-loop serving harness: QPS + latency over the EC1–EC5 mixes.
//!
//! Drives [`cnb_engine::PlanServer`] with each workload family's
//! parameterized serving mix ([`Workload::serving_query`]): warm the plan
//! cache with one cold request, then serve a closed loop of `requests`
//! parameterized repeats on `threads` executor workers over the family's
//! shared read-only database. Sustained throughput is requests over the
//! measured wall-clock window; latency percentiles come from each
//! request's engine-measured execution time (`ExecStats::elapsed`); the
//! cache hit rate is the server's lifetime rate, so the one cold
//! optimization per family shows up honestly in the denominator.
//!
//! Every served plan is checked against `cnb_analyze::validate_plan` in
//! debug builds — a cached plan that fails semantic validation means the
//! cache served a plan the static-analysis gate would reject, and the run
//! aborts rather than timing it. `tests/serving_smoke.rs` asserts the same
//! property unconditionally.

use std::time::{Duration, Instant};

use cnb_engine::{FaultPlan, PlanServer, ServeConfig, ServeError, WallClock};
use cnb_workloads::{suite, DataScale, Workload};

/// One measured serving run (a family at a thread count, or the pooled
/// EC1–EC5 mix).
#[derive(Clone, Debug)]
pub struct ServingPoint {
    /// Family name ("EC1" … "EC5") or `"mix"` for the pooled aggregate.
    pub label: String,
    /// Executor worker threads.
    pub threads: usize,
    /// Requests in the measured window (warmup excluded).
    pub requests: usize,
    /// Measured wall-clock of the window, seconds.
    pub elapsed_secs: f64,
    /// Sustained throughput: `requests / elapsed_secs`.
    pub qps: f64,
    /// Median per-request execution latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Plan-cache hits over the server's lifetime (includes warmup).
    pub cache_hits: usize,
    /// Plan-cache misses over the server's lifetime (the cold plant).
    pub cache_misses: usize,
    /// Lifetime hit rate.
    pub hit_rate: f64,
    /// Total rows served in the window (cross-check against zero-work runs).
    pub rows_total: usize,
}

/// Nearest-rank percentile of an unsorted sample set (p in [0, 100]).
pub fn percentile_ms(samples: &mut [f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Serves `requests` parameterized repeats of `w`'s serving mix on
/// `threads` workers and measures the window. Returns the point plus the
/// raw per-request latency samples (milliseconds) so suite-level callers
/// can pool them for mix percentiles.
///
/// The cache is warmed with pick 0 before the window opens, so the
/// measured window is the steady "answer many" regime; the warmup's cold
/// optimization still appears in the reported cache counters.
pub fn run_family(
    w: &dyn Workload,
    scale: DataScale,
    requests: usize,
    threads: usize,
) -> (ServingPoint, Vec<f64>) {
    let db = w.generate_at(scale);
    let strategy = w.expectations().strategy;
    let mut server = PlanServer::new(w.optimizer(), crate::config(strategy));

    // Warm: one cold request plants the family's template plans.
    let (plan, _) = server
        .serve(&db, &w.serving_query(scale, 0))
        .unwrap_or_else(|e| panic!("{}: warmup request failed: {e}", w.name()));
    assert!(
        !plan.cache_hit,
        "{}: warmup must be the cold miss",
        w.name()
    );
    validate_served_plan(w, &plan.plan);

    let mix: Vec<_> = (0..requests)
        .map(|i| w.serving_query(scale, i as u64))
        .collect();
    let start = Instant::now();
    let results = server.serve_batch(&db, &mix, threads);
    let elapsed_secs = start.elapsed().as_secs_f64();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
    let mut rows_total = 0usize;
    for r in results {
        let (plan, exec) =
            r.unwrap_or_else(|e| panic!("{}: serving request failed: {e}", w.name()));
        assert!(plan.cache_hit, "{}: warmed mix must only hit", w.name());
        validate_served_plan(w, &plan.plan);
        latencies_ms.push(exec.stats.elapsed.as_secs_f64() * 1e3);
        rows_total += exec.rows.len();
    }

    let point = ServingPoint {
        label: w.name().to_string(),
        threads,
        requests,
        elapsed_secs,
        qps: requests as f64 / elapsed_secs.max(1e-12),
        p50_ms: percentile_ms(&mut latencies_ms, 50.0),
        p95_ms: percentile_ms(&mut latencies_ms, 95.0),
        p99_ms: percentile_ms(&mut latencies_ms, 99.0),
        cache_hits: server.cache().hits(),
        cache_misses: server.cache().misses(),
        hit_rate: server.cache().hit_rate(),
        rows_total,
    };
    (point, latencies_ms)
}

/// Debug-mode guard: a served plan must pass the same semantic validation
/// the `cnb-analyze` gate applies to backchase-emitted plans.
fn validate_served_plan(w: &dyn Workload, plan: &cnb_ir::prelude::Query) {
    if cfg!(debug_assertions) {
        cnb_analyze::validate::validate_plan(&w.schema(), plan)
            .unwrap_or_else(|e| panic!("{}: served plan fails validate_plan: {e}", w.name()));
    }
}

/// Runs the whole EC1–EC5 suite at one thread count, returning the five
/// family points plus a pooled `"mix"` aggregate: total requests over
/// total measured time, percentiles over the *pooled* per-request latency
/// samples of all families, and summed cache counters.
pub fn run_suite(
    scale: DataScale,
    requests_per_family: usize,
    threads: usize,
) -> Vec<ServingPoint> {
    let mut points: Vec<ServingPoint> = Vec::new();
    let mut pooled: Vec<f64> = Vec::new();
    for w in suite() {
        let (point, latencies) = run_family(w.as_ref(), scale, requests_per_family, threads);
        points.push(point);
        pooled.extend(latencies);
    }
    let total_requests: usize = points.iter().map(|p| p.requests).sum();
    let total_secs: f64 = points.iter().map(|p| p.elapsed_secs).sum();
    let hits: usize = points.iter().map(|p| p.cache_hits).sum();
    let misses: usize = points.iter().map(|p| p.cache_misses).sum();
    points.push(ServingPoint {
        label: "mix".to_string(),
        threads,
        requests: total_requests,
        elapsed_secs: total_secs,
        qps: total_requests as f64 / total_secs.max(1e-12),
        p50_ms: percentile_ms(&mut pooled, 50.0),
        p95_ms: percentile_ms(&mut pooled, 95.0),
        p99_ms: percentile_ms(&mut pooled, 99.0),
        cache_hits: hits,
        cache_misses: misses,
        hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        rows_total: points.iter().map(|p| p.rows_total).sum(),
    });
    points
}

// ---------------------------------------------------------------------------
// Open-loop load: scheduled arrivals against a bounded backlog.
// ---------------------------------------------------------------------------

/// Configuration for one open-loop sweep.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Requests per offered-load point.
    pub requests: usize,
    /// Offered load as fractions of the measured service capacity
    /// (`threads / mean service time`); 1.0 is saturation, above it the
    /// backlog grows without bound and shedding/expiry must kick in.
    pub utilizations: Vec<f64>,
    /// Per-request deadline: a request still queued this long after its
    /// scheduled arrival is dropped at dispatch (counted `expired`).
    pub deadline: Duration,
    /// Fault-retry budget per request (mirrors [`ServeConfig::max_retries`]).
    pub max_retries: usize,
    /// Per-attempt injected failure probability.
    pub fail_rate: f64,
    /// Fault-plan seed (recorded so a sweep is reproducible end to end).
    pub fault_seed: u64,
    /// Arrivals finding this many requests already waiting are shed on the
    /// spot (counted `shed`) — the admission queue bound.
    pub backlog_cap: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            requests: 200,
            utilizations: vec![0.5, 0.9, 1.2],
            deadline: Duration::from_millis(50),
            max_retries: 2,
            fail_rate: 0.05,
            fault_seed: 0xC4A0_5EED,
            backlog_cap: 64,
        }
    }
}

/// One open-loop measurement: a family at one offered load.
#[derive(Clone, Debug)]
pub struct OpenLoopPoint {
    /// Family name ("EC1" … "EC5").
    pub label: String,
    /// Executor worker threads (= simulated servers).
    pub threads: usize,
    /// Offered arrival rate, requests/second.
    pub offered_qps: f64,
    /// Offered load as a fraction of measured capacity.
    pub utilization: f64,
    /// Scheduled arrivals at this point.
    pub requests: usize,
    /// Requests that completed with rows.
    pub served: usize,
    /// Arrivals shed at the backlog cap.
    pub shed: usize,
    /// Requests dropped at dispatch because their deadline had passed.
    pub expired: usize,
    /// Requests lost to injected faults after exhausting retries.
    pub faulted: usize,
    /// Total fault retries absorbed (survivors included).
    pub retries: usize,
    /// Median sojourn (queue wait + service) of served requests, ms.
    pub p50_ms: f64,
    /// 95th-percentile sojourn, ms.
    pub p95_ms: f64,
    /// 99th-percentile sojourn, ms.
    pub p99_ms: f64,
}

/// A request's fate in the measured (fault-injected) run, carried into the
/// arrival simulation.
enum MeasuredFate {
    /// Executed: its measured service time (seconds) and retries consumed.
    Served { service_secs: f64, retries: usize },
    /// Lost to fault injection after `retries` retries; failed attempts
    /// abort before executing, so it occupies no service time.
    Faulted { retries: usize },
}

/// Drives one family's serving mix through an **open loop**: requests
/// arrive on a fixed schedule (offered QPS) whether or not the server has
/// kept up, wait in a bounded FIFO backlog, and are shed (backlog full),
/// expired (deadline passed before dispatch), served, or lost to injected
/// faults.
///
/// Two layers, honestly separated: **service times, fault casualties and
/// retry counts are measured** — the whole mix runs through
/// [`PlanServer::serve_batch_under`] with a seeded [`FaultPlan`] and a wall
/// clock, exactly the production path. **Queueing is then simulated** in
/// deterministic virtual time over those measured service times: arrival
/// `i` at `i / qps` seconds, `threads` servers, FIFO dispatch to the
/// earliest-free server. Sleeping through real inter-arrival gaps would
/// make the sweep minutes-long and flaky; the virtual-time replay is a pure
/// function of the measured samples, so two analyses of one measurement
/// agree exactly. Every arrival lands in exactly one bucket:
/// `served + shed + expired + faulted == requests`.
pub fn run_open_loop(
    w: &dyn Workload,
    scale: DataScale,
    threads: usize,
    cfg: &OpenLoopConfig,
) -> Vec<OpenLoopPoint> {
    assert!(threads > 0, "open loop needs at least one server");
    let db = w.generate_at(scale);
    let strategy = w.expectations().strategy;
    let mut server = PlanServer::new(w.optimizer(), crate::config(strategy));
    server
        .serve(&db, &w.serving_query(scale, 0))
        .unwrap_or_else(|e| panic!("{}: warmup request failed: {e}", w.name()));

    // Measured layer: the real pressure path, faults and retries included.
    let mix: Vec<_> = (0..cfg.requests)
        .map(|i| w.serving_query(scale, i as u64))
        .collect();
    let faults = FaultPlan::failures(cfg.fault_seed, cfg.fail_rate);
    let serve_cfg = ServeConfig::unbounded().with_max_retries(cfg.max_retries);
    let clock = WallClock::start();
    let outcomes = server.serve_batch_under(&db, &mix, threads, &serve_cfg, &clock, Some(&faults));

    let fates: Vec<MeasuredFate> = outcomes
        .iter()
        .map(|o| match &o.result {
            Ok((_, exec)) => MeasuredFate::Served {
                service_secs: exec.stats.elapsed.as_secs_f64(),
                retries: o.retries,
            },
            Err(ServeError::FaultInjected { .. }) | Err(ServeError::RetriesExhausted { .. }) => {
                MeasuredFate::Faulted { retries: o.retries }
            }
            Err(e) => panic!("{}: open-loop measurement failed: {e}", w.name()),
        })
        .collect();
    let (mut service_sum, mut executed) = (0.0f64, 0usize);
    for f in &fates {
        if let MeasuredFate::Served { service_secs, .. } = f {
            service_sum += service_secs;
            executed += 1;
        }
    }
    assert!(executed > 0, "{}: every request was faulted away", w.name());
    let capacity_qps = threads as f64 / (service_sum / executed as f64).max(1e-9);

    // Simulated layer: deterministic virtual-time arrival replay.
    cfg.utilizations
        .iter()
        .map(|&utilization| {
            let offered_qps = utilization * capacity_qps;
            let deadline_secs = cfg.deadline.as_secs_f64();
            let mut free = vec![0.0f64; threads];
            let mut dispatches: Vec<f64> = Vec::with_capacity(cfg.requests);
            let mut sojourn_ms: Vec<f64> = Vec::new();
            let (mut served, mut shed, mut expired, mut faulted, mut retries) = (0, 0, 0, 0, 0);
            for (i, fate) in fates.iter().enumerate() {
                let arrival = i as f64 / offered_qps;
                let fate_retries = match fate {
                    MeasuredFate::Served { retries: r, .. } => *r,
                    MeasuredFate::Faulted { retries: r } => {
                        // Fails fast before execution: no queue, no service.
                        faulted += 1;
                        retries += *r;
                        continue;
                    }
                };
                let backlog = dispatches.iter().filter(|&&d| d > arrival).count();
                if backlog >= cfg.backlog_cap {
                    shed += 1;
                    continue;
                }
                let s = (0..threads)
                    .min_by(|&a, &b| free[a].total_cmp(&free[b]))
                    .expect("threads > 0");
                let start = arrival.max(free[s]);
                dispatches.push(start);
                if start - arrival > deadline_secs {
                    expired += 1;
                    continue;
                }
                let service_secs = match fate {
                    MeasuredFate::Served { service_secs, .. } => *service_secs,
                    MeasuredFate::Faulted { .. } => unreachable!("handled above"),
                };
                free[s] = start + service_secs;
                retries += fate_retries;
                served += 1;
                sojourn_ms.push((start - arrival + service_secs) * 1e3);
            }
            let pct = |samples: &mut Vec<f64>, p: f64| {
                if samples.is_empty() {
                    0.0
                } else {
                    percentile_ms(samples, p)
                }
            };
            OpenLoopPoint {
                label: w.name().to_string(),
                threads,
                offered_qps,
                utilization,
                requests: cfg.requests,
                served,
                shed,
                expired,
                faulted,
                retries,
                p50_ms: pct(&mut sojourn_ms, 50.0),
                p95_ms: pct(&mut sojourn_ms, 95.0),
                p99_ms: pct(&mut sojourn_ms, 99.0),
            }
        })
        .collect()
}

/// Runs the open-loop sweep for every EC1–EC5 family at one thread count.
pub fn run_open_loop_suite(
    scale: DataScale,
    threads: usize,
    cfg: &OpenLoopConfig,
) -> Vec<OpenLoopPoint> {
    suite()
        .iter()
        .flat_map(|w| run_open_loop(w.as_ref(), scale, threads, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_ms(&mut xs, 50.0), 50.0);
        assert_eq!(percentile_ms(&mut xs, 95.0), 95.0);
        assert_eq!(percentile_ms(&mut xs, 99.0), 99.0);
        assert_eq!(percentile_ms(&mut xs, 100.0), 100.0);
        let mut one = vec![7.0];
        assert_eq!(percentile_ms(&mut one, 50.0), 7.0);
        assert_eq!(percentile_ms(&mut one, 99.0), 7.0);
    }
}
