//! The OQL-like front-end: write queries and constraints as text (the
//! paper's §4 "language as user friendly as OQL"), optimize, and inspect
//! plans — reproducing Example 3.3 end to end from source text.
//!
//! ```sh
//! cargo run --example oql_frontend
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::ir::prelude::*;

fn main() {
    // Example 3.3's navigation query, parsed from text.
    let q = parse_query(
        "select struct(F = k1, L = o2) \
         from dom M1 k1, M1[k1].N o1, dom M2 k2, M2[k2].N o2 \
         where o1 = k2",
    )
    .expect("query parses");
    println!("parsed query:\n{q}\n");

    // The inverse-relationship constraints, parsed from text.
    let constraints = vec![
        parse_constraint(
            "INV_1N",
            "forall (k in dom M1)(o in M1[k].N) \
             => exists (k2 in dom M2)(o2 in M2[k2].P) k2 = o and o2 = k",
        )
        .unwrap(),
        parse_constraint(
            "INV_1P",
            "forall (k2 in dom M2)(o2 in M2[k2].P) \
             => exists (k in dom M1)(o in M1[k].N) k2 = o and o2 = k",
        )
        .unwrap(),
        parse_constraint(
            "INV_2N",
            "forall (k in dom M2)(o in M2[k].N) \
             => exists (k2 in dom M3)(o2 in M3[k2].P) k2 = o and o2 = k",
        )
        .unwrap(),
        parse_constraint(
            "INV_2P",
            "forall (k2 in dom M3)(o2 in M3[k2].P) \
             => exists (k in dom M2)(o in M2[k].N) k2 = o and o2 = k",
        )
        .unwrap(),
    ];
    for c in &constraints {
        println!("constraint {}: {c}", c.name);
    }

    let optimizer = Optimizer::with_constraints(Schema::new(), constraints);
    let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Ocs));
    println!(
        "\n{} plans (OCS, {} strata) — the paper's Q, Q1, Q2, Q3:",
        res.plans.len(),
        res.strata
    );
    for (i, p) in res.plans.iter().enumerate() {
        println!("\nQ{}:\n{}", i, p.query);
    }
    assert_eq!(res.plans.len(), 4);
}
