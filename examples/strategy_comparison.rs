//! FB vs OQF vs OCS on a chain-of-stars query — a miniature of the paper's
//! §5.3 experiments, showing the completeness/time trade-off.
//!
//! ```sh
//! cargo run --release --example strategy_comparison
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::workloads::Ec2;

fn main() {
    // 2 stars, 4 corners each, 2 overlapping views per star.
    let ec2 = Ec2::new(2, 4, 2);
    let q = ec2.query();
    println!(
        "chain-of-stars query: {} bindings, {} constraints\n",
        ec2.query_size(),
        ec2.constraint_count()
    );

    let optimizer = Optimizer::new(ec2.schema());
    for strategy in [Strategy::Full, Strategy::Oqf, Strategy::Ocs] {
        let result = optimizer.optimize(&q, &OptimizerConfig::with_strategy(strategy));
        println!(
            "{strategy:>4}: {:>3} plans | {:>6} subqueries explored | {:?} total | fragments {} | strata {}",
            result.plans.len(),
            result.explored,
            result.total_time,
            result.fragments,
            result.strata,
        );
    }
    println!(
        "\nOQF matches FB's plan set at a fraction of the search (Theorem 3.2);\n\
         OCS is fastest but misses plans that need two overlapping views at once."
    );
}
