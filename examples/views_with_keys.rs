//! Example 2.2 from the paper: a key constraint enables rewriting with a
//! second materialized view.
//!
//! The query joins two normalized "conceptual relations" U1 and U2. View V2
//! can always replace the star of R2; but replacing *both* stars (query Q'')
//! is only correct if `K` is a key of `R1` — without it, joining `R1` back
//! to `V1` on `K` may pick up a different row's `F`.
//!
//! ```sh
//! cargo run --example views_with_keys
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::workloads::Example22;

fn plans_using(result: &OptimizeResult, v1: bool, v2: bool) -> usize {
    result
        .plans
        .iter()
        .filter(|p| {
            let names: Vec<&str> = p.physical_used.iter().map(|s| s.as_str()).collect();
            names.contains(&"V1") == v1 && names.contains(&"V2") == v2
        })
        .count()
}

fn main() {
    for with_key in [false, true] {
        let ex = Example22::new(with_key);
        let optimizer = Optimizer::new(ex.schema.clone());
        let result = optimizer.optimize(&ex.query, &OptimizerConfig::with_strategy(Strategy::Full));
        println!(
            "\n=== KEY(R1.K) declared: {with_key} -> {} plans ===",
            result.plans.len()
        );
        for p in &result.plans {
            let used: Vec<&str> = p.physical_used.iter().map(|s| s.as_str()).collect();
            println!("  plan with views {used:?} ({} bindings)", p.arity);
        }
        let both = plans_using(&result, true, true);
        let only_v2 = plans_using(&result, false, true);
        assert!(only_v2 >= 1, "Q' (V2 replaces star 2) is always available");
        if with_key {
            assert!(both >= 1, "Q'' requires the key constraint");
            println!("  => Q'' (both views) found — the key constraint made it sound.");
        } else {
            assert_eq!(both, 0, "Q'' must not appear without the key");
            println!("  => Q'' correctly absent without the key constraint.");
        }
    }
    // Show Q'' itself.
    let ex = Example22::new(true);
    let optimizer = Optimizer::new(ex.schema.clone());
    let result = optimizer.optimize(&ex.query, &OptimizerConfig::with_strategy(Strategy::Full));
    let qpp = result
        .plans
        .iter()
        .find(|p| p.physical_used.len() == 2)
        .expect("double-view plan");
    println!(
        "\nQ'' (paper's rewriting, sound only under KEY(R1.K)):\n{}",
        qpp.query
    );
}
