//! Quickstart: declare a schema with an index, write a query, run the
//! Chase & Backchase optimizer, execute the best plan.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::engine::{execute, Database};
use chase_too_far::ir::prelude::*;

fn main() {
    // 1. Logical schema: one relation Emp(Id, Dept, Salary).
    let mut schema = Schema::new();
    schema.add_relation(
        "Emp",
        [
            (sym("Id"), Type::Int),
            (sym("Dept"), Type::Int),
            (sym("Salary"), Type::Int),
        ],
    );
    // 2. Physical schema: a primary index on Id, described to the optimizer
    //    purely as a pair of inclusion constraints (a "skeleton").
    add_primary_index(&mut schema, sym("Emp"), sym("Id"), "EmpById");

    // 3. The query: select struct(Id, Salary) from Emp e where e.Dept = 7.
    let mut q = Query::new();
    let e = q.bind("e", Range::Name(sym("Emp")));
    q.equate(PathExpr::from(e).dot("Dept"), PathExpr::from(7i64));
    q.output("Id", PathExpr::from(e).dot("Id"));
    q.output("Salary", PathExpr::from(e).dot("Salary"));
    println!("query:\n{q}\n");

    // 4. Optimize: chase to the universal plan, backchase to minimal plans.
    let optimizer = Optimizer::new(schema.clone());
    let result = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Full));
    // Timing goes to stderr: stdout is fully deterministic (the check.sh
    // determinism gate runs this example twice and diffs stdout).
    println!(
        "{} plans (universal plan had {} bindings, {} subqueries explored)",
        result.plans.len(),
        result.universal_arity,
        result.explored
    );
    eprintln!("optimized in {:?}", result.total_time);
    for (i, p) in result.plans.iter().enumerate() {
        println!(
            "\nplan {} (physical structures: {:?}):\n{}",
            i + 1,
            p.physical_used,
            p.query
        );
    }

    // 5. Execute the best plan on some data.
    let mut db = Database::new();
    for (id, dept, salary) in [(1, 7, 120), (2, 7, 95), (3, 4, 150)] {
        db.insert_row(
            sym("Emp"),
            Value::record([
                (sym("Id"), Value::Int(id)),
                (sym("Dept"), Value::Int(dept)),
                (sym("Salary"), Value::Int(salary)),
            ]),
        );
    }
    db.materialize_physical(&schema).expect("materialization");
    let best = &result.plans[0].query;
    let out = execute(&db, best).expect("execution");
    println!("\nbest plan result ({} rows):", out.rows.len());
    for row in &out.rows {
        println!("  {row}");
    }
    // Row order is exact, not just the row *set*: the engine's batched
    // executor guarantees output order is a pure function of (db, plan) —
    // here the EmpById dom-scan enumerates keys in Emp insertion order.
    let rendered: Vec<String> = out.rows.iter().map(|r| r.to_string()).collect();
    assert_eq!(
        rendered,
        [
            "struct(Id: 1, Salary: 120)".to_string(),
            "struct(Id: 2, Salary: 95)".to_string(),
        ],
        "deterministic row order"
    );
}
