//! Example 3.3 / EC3: object-oriented navigation optimized through inverse
//! relationships and access support relations (ASRs).
//!
//! A query navigating `M1 → M2 → M3` along the `N` ("next") attributes is
//! semantically rewritable to navigate *backwards* along `P` ("previous"),
//! and the backward two-hop path is materialized as an ASR — so the C&B
//! optimizer discovers a plan that simply scans a binary table. Neither
//! rewriting is possible without the other: this interplay between semantic
//! optimization and physical structures is the paper's thesis.
//!
//! ```sh
//! cargo run --example oo_navigation
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::engine::execute;
use chase_too_far::workloads::Ec3;

fn main() {
    let ec3 = Ec3::new(3, 1); // classes M1..M3, one ASR over both hops
    let schema = ec3.schema();
    let q = ec3.query();
    println!("navigation query:\n{q}\n");

    let optimizer = Optimizer::new(schema);
    // OCS pipelines: first the inverse strata (semantic phase) flip hops,
    // then the ASR stratum (physical phase) maps flipped pairs onto the ASR.
    let result = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Ocs));
    println!(
        "{} plans through {} OCS strata:",
        result.plans.len(),
        result.strata
    );
    for (i, p) in result.plans.iter().enumerate() {
        println!(
            "\nplan {} (physical: {:?}):\n{}",
            i + 1,
            p.physical_used,
            p.query
        );
    }

    let asr_plan = result
        .plans
        .iter()
        .find(|p| !p.physical_used.is_empty())
        .expect("the ASR plan requires the semantic phase first");
    println!("\n=> the ASR plan exists only because the inverse constraints flipped the hops.");

    // Execute everything on a generated object graph and check agreement.
    let db = ec3.generate(200, 3, 1);
    let norm = |rows: &[cnb_ir::prelude::Value]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };
    let baseline = execute(&db, &q).expect("original");
    let via_asr = execute(&db, &asr_plan.query).expect("ASR plan");
    println!(
        "original: {} rows, {} tuples considered; ASR plan: {} rows, {} tuples considered",
        baseline.rows.len(),
        baseline.stats.tuples_considered,
        via_asr.rows.len(),
        via_asr.stats.tuples_considered
    );
    assert_eq!(norm(&baseline.rows), norm(&via_asr.rows));
}
