//! Example 2.1 from the paper: a referential integrity constraint enables a
//! composite index that the query alone cannot use.
//!
//! `R(A,B,C,E)` has only an index `I` on `ABC`; the query filters on `B` and
//! `C`, so no index prefix applies. Knowing the foreign key `R.A → S.A`, the
//! C&B optimizer introduces a join with the small table `S` (*join
//! introduction*), which unloces `I`: for each `s ∈ S`, look up
//! `I[struct(A = s.A, B = b, C = c)]`.
//!
//! ```sh
//! cargo run --example semantic_index_selection
//! ```

use chase_too_far::core::prelude::*;
use chase_too_far::engine::{execute, Database};
use chase_too_far::ir::prelude::*;
use chase_too_far::workloads::Example21;

fn main() {
    let ex = Example21::new();
    println!("schema:\n{}", ex.schema);
    println!("query:\n{}\n", ex.query);

    let optimizer = Optimizer::new(ex.schema.clone());
    let result = optimizer.optimize(&ex.query, &OptimizerConfig::with_strategy(Strategy::Full));
    println!("{} plans:", result.plans.len());
    for (i, p) in result.plans.iter().enumerate() {
        println!(
            "\nplan {} (physical: {:?}):\n{}",
            i + 1,
            p.physical_used,
            p.query
        );
    }

    // The headline plan: scan S, probe the composite index.
    let index_plan = result
        .plans
        .iter()
        .find(|p| p.physical_used.contains(&sym("I")))
        .expect("the RIC must unlock the ABC index");
    println!("\n=> the semantic constraint unlocked index I, as in the paper.");

    // Execute both the original query and the index plan; same answers.
    let mut db = Database::new();
    // R rows; only A values 1..=4 exist (all present in S via the RIC).
    for (a, b, c, e) in [
        (1, 7, "c0", 10),
        (2, 7, "c0", 20),
        (3, 9, "c0", 30),
        (1, 7, "cX", 40),
    ] {
        db.insert_row(
            sym("R"),
            Value::record([
                (sym("A"), Value::Int(a)),
                (sym("B"), Value::Int(b)),
                (sym("C"), Value::str(c)),
                (sym("E"), Value::Int(e)),
            ]),
        );
    }
    for a in 1..=4 {
        db.insert_row(sym("S"), Value::record([(sym("A"), Value::Int(a))]));
    }
    db.materialize_physical(&ex.schema)
        .expect("materialization");

    let baseline = execute(&db, &ex.query).expect("original");
    let via_index = execute(&db, &index_plan.query).expect("index plan");
    println!(
        "original: {} rows ({} tuples considered); index plan: {} rows ({} tuples considered)",
        baseline.rows.len(),
        baseline.stats.tuples_considered,
        via_index.rows.len(),
        via_index.stats.tuples_considered,
    );
    let norm = |rows: &[Value]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&baseline.rows), norm(&via_index.rows));
    assert_eq!(baseline.rows.len(), 2);
}
