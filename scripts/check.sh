#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 verify command.
# Everything runs offline — the workspace has no registry dependencies.
#
# The tier-1 tests run twice: once with the backchase pinned sequential
# (CNB_THREADS=1) and once with a 4-worker parallel frontier — the results
# must be identical by construction, so both runs must be green.
#
# Each `==> tier` header is followed (when the next tier starts) by the
# wall-clock seconds the tier took, so a slow regression shows up in the
# transcript without any external timing harness.
set -euo pipefail
cd "$(dirname "$0")/.."

_tier_name=""
_tier_t0=0
tier_done() {
  if [[ -n "$_tier_name" ]]; then
    echo "    ... ${_tier_name} done in $((SECONDS - _tier_t0))s"
  fi
  _tier_name=""
}
tier() {
  tier_done
  _tier_name="$1"
  _tier_t0=$SECONDS
  echo "==> $1"
}

tier "cargo fmt --check"
cargo fmt --check

tier "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

tier "cargo build --release"
cargo build --release

# Static-analysis tier: every prong of cnb-analyze in one pass — the
# determinism lint (denied std hash maps, wall-clock reads, thread-identity
# leaks, stale allow-annotations), the interprocedural determinism taint
# analysis over the workspace call graph, the semantic validator (every
# suite workload's schema, constraints — including the weak-acyclicity
# chase termination check — query, and every backchase-emitted plan), and
# the AGM-bound plan certifier. Offline and fast, so it runs ahead of every
# test tier: a finding here makes the test failures downstream redundant.
# The machine-readable report lands in target/cnb-analyze.json either way.
tier "cnb-analyze all (lint + taint + validate-suite + AGM certify)"
analysis_json=target/cnb-analyze.json
if ! cargo run --release -q -p cnb-analyze -- all . --json "$analysis_json"; then
  echo "error: cnb-analyze found problems — JSON findings at $analysis_json" >&2
  exit 1
fi

# Fast-fail gate: the EC4/EC5 golden + differential suites (star-schema and
# cyclic-join workloads, exact row order, batched-vs-legacy oracle, thread
# invariance) run first and explicitly in both thread tiers — they are also
# part of the full `cargo test -q` runs below, but failing them early makes
# a workload regression obvious before the whole tier finishes.
for t in 1 4; do
  tier "CNB_THREADS=$t EC4/EC5 golden + differential suites"
  CNB_THREADS=$t cargo test -q -p cnb-workloads --test ec4_star --test ec5_cyclic --test workload_suite
  CNB_THREADS=$t cargo test -q --test property_based -- \
    parallel_backchase_differential_ec4 parallel_backchase_differential_ec5 \
    cost_observation_feedback_matches_arithmetic_mean
done

# WCOJ tier: the generic-join differential suite — answer-set equality
# against both binary engines on uniform and power-law EC5 data, output
# order a pure function of (db, plan) pinned by golden digests, and every
# backchase-emitted generic-join twin re-verified against the static
# validator and its fractional-cover certificate. The digest goldens make
# the thread sweep meaningful: all four tiers must land on identical bytes.
for t in 1 2 4 8; do
  tier "CNB_THREADS=$t WCOJ differential suite"
  CNB_THREADS=$t cargo test -q -p cnb-engine --test wcoj_differential
done

# Serving tier: the canonical-fingerprint plan cache and the executor
# worker pool. The smoke suite pins the serving contract — row sets
# identical at 1/2/4/8 executor threads, warm hits answering without chase
# & backchase (audited by counter), point picks partitioning the central
# query, every served plan passing validate_plan — and the byte-identity
# property checks warm-cache plans against cold-path plans. Both run in the
# sequential and parallel backchase tiers; a tiny closed-loop QPS window
# then exercises the recording binary end to end.
for t in 1 4; do
  tier "CNB_THREADS=$t serving smoke (plan cache + executor pool)"
  CNB_THREADS=$t cargo test -q -p cnb-bench --test serving_smoke
  CNB_THREADS=$t cargo test -q --test property_based -- cache_hits_serve_byte_identical_plans
done
tier "serving QPS smoke (record_serving, tiny window)"
CNB_SERVING_REQUESTS=8 CNB_ROWS=80 cargo run --release -q --bin record_serving >/dev/null

# Pressure tier: the serving robustness layer. Admission control, deadlines
# on the injectable clock (frozen = byte-identical at every thread count,
# ticking = deterministic expiry + panic-free mid-batch cooperative stops),
# seeded fault injection with bounded retry, and the bounded plan cache's
# eviction/re-optimization audits — at both backchase thread tiers.
for t in 1 4; do
  tier "CNB_THREADS=$t pressure suite (admission/deadlines/faults/eviction)"
  CNB_THREADS=$t cargo test -q -p cnb-engine --test pressure
  CNB_THREADS=$t cargo test -q --test property_based -- \
    fault_free_requests_are_byte_identical_at_every_thread_count \
    admission_decisions_are_a_pure_function_of_inputs
done

tier "CNB_THREADS=1 cargo test -q   (sequential backchase)"
CNB_THREADS=1 cargo test -q

tier "CNB_THREADS=4 cargo test -q   (parallel backchase frontier)"
CNB_THREADS=4 cargo test -q

# Debug-assert tier: the congruence undo trail re-audits its full invariants
# (hash-consing bijective, member lists a partition, union-find agreement)
# after every rollback when CNB_TRAIL_CHECK is set. Expensive, so it is its
# own pass rather than the default.
tier "CNB_TRAIL_CHECK=1 CNB_THREADS=2 cargo test -q   (trail-consistency audit)"
CNB_TRAIL_CHECK=1 CNB_THREADS=2 cargo test -q

# Determinism gate: execution row order must be a pure function of
# (db, plan). Two *separate processes* run the quickstart example (which
# asserts exact row order internally and prints rows to stdout); their
# stdout must be byte-identical — this is what a randomly seeded hash-map
# iteration anywhere in the scan/join path would break.
tier "determinism gate: quickstart twice, stdout must be byte-identical"
cargo build --release -q --example quickstart
qs=target/release/examples/quickstart
run1=$("$qs" 2>/dev/null)
run2=$("$qs" 2>/dev/null)
if [[ "$run1" != "$run2" ]]; then
  echo "error: quickstart stdout differs across runs — execution is nondeterministic" >&2
  diff <(printf '%s\n' "$run1") <(printf '%s\n' "$run2") >&2 || true
  exit 1
fi
tier_done

echo "All checks passed."
