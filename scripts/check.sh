#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 verify command.
# Everything runs offline — the workspace has no registry dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
