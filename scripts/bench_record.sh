#!/usr/bin/env bash
# Records the backchase perf trajectory (fig. 6/7 workloads, full backchase,
# 1/2/4 worker threads) into BENCH_backchase.json at the repo root.
# Fully offline; ~half a minute of measurement on a laptop-class core.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q --bin record_backchase
./target/release/record_backchase >BENCH_backchase.json
echo "wrote $(pwd)/BENCH_backchase.json:"
cat BENCH_backchase.json
