#!/usr/bin/env bash
# Records the perf trajectory into JSON files at the repo root:
# * BENCH_backchase.json — optimization-time numbers (fig. 6/7 workloads
#   plus the EC4 star-schema and EC5 cyclic-join workloads of figs. 11/12,
#   full backchase, 1/2/4 worker threads), a wcoj section (ec5_tri_wcoj:
#   the generic-join operator vs the best wedge-view plan on uniform and
#   skewed triangle data — wcoj must win the skewed point, where the
#   binary intermediate exceeds the certified AGM bound), and two micro
#   sections: micro.congruence (savepoint churn) and micro.execution
#   (batched vs. tuple-at-a-time join throughput on the EC1 chain — the
#   batched path must not be slower).
# * BENCH_serving.json — the serving path: closed-loop QPS and p50/p95/p99
#   per-request latency for each EC1–EC5 parameterized serving mix plus the
#   pooled mix, at 1/2/4 executor threads, with plan-cache hit rates; plus
#   an open_loop section — scheduled arrivals at 0.5/0.9/1.2x measured
#   capacity against a bounded backlog with deadlines and seeded fault
#   injection, reporting served/shed/expired/faulted/retry counts and
#   p50/p95/p99 sojourn per offered load.
# Fully offline; ~a minute of measurement on a laptop-class core.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -q --bin record_backchase --bin record_serving" >&2
cargo build --release -q --bin record_backchase --bin record_serving

# Never record numbers for a workspace the static-analysis gate rejects:
# a lint, taint, validation, or AGM-certification finding means the
# measured code is off-contract. The decision is read from the
# machine-readable JSON report, not scraped from exit text — the same
# artifact scripts/check.sh leaves behind.
echo "==> cnb-analyze gate (all prongs, JSON report)" >&2
analysis_json=target/cnb-analyze.json
cargo run --release -q -p cnb-analyze -- all . --json "$analysis_json" >&2 || true
# The top-level verdict is the report's last field, on its own 2-space
# indented line — the nested validate/agm "ok" fields are inline in their
# objects, so the anchored match below cannot confuse them.
if ! grep -q '^  "ok": true$' "$analysis_json"; then
  echo "error: $analysis_json does not say \"ok\": true — refusing to record" >&2
  exit 1
fi

# Recording with a stale binary silently benchmarks old code; fail loudly if
# the build somehow left a binary missing or older than any library/binary
# source it is built from (benches/ and tests/ are not in its build graph,
# so cargo legitimately skips relinking when only those change).
for name in record_backchase record_serving; do
  bin=target/release/$name
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin missing after the release build — refusing to record" >&2
    exit 1
  fi
  stale=$(find crates/*/src src -name '*.rs' -newer "$bin" -print -quit)
  if [[ -n "$stale" ]]; then
    echo "error: release build is stale ($stale is newer than $bin) — refusing to record" >&2
    exit 1
  fi
done

./target/release/record_backchase >BENCH_backchase.json
echo "wrote $(pwd)/BENCH_backchase.json:"
cat BENCH_backchase.json

./target/release/record_serving >BENCH_serving.json
echo "wrote $(pwd)/BENCH_serving.json:"
cat BENCH_serving.json
