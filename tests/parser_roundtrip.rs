//! Parser-driven end-to-end tests (ROADMAP item): the OQL-like surface
//! syntax round-trips the EC1–EC3 workload queries and constraints, and a
//! *parsed* query drives chase-and-backchase with the same results as its
//! programmatically built twin.
//!
//! The round trip leans on `Display` emitting exactly the parser's grammar:
//! `Query`/`Constraint` render with human variable names, `parse_query` /
//! `parse_constraint` re-bind them, and `canonical_key` (rename-invariant)
//! certifies the query round trip while a re-render certifies constraints.

use chase_too_far::core::prelude::{chase_and_backchase, BackchaseConfig};
use chase_too_far::ir::prelude::*;
use chase_too_far::workloads::{Ec1, Ec2, Ec3, Ec4, Ec5, Workload};

/// Display → parse → canonical_key is the identity on a query.
fn assert_query_roundtrip(label: &str, q: &Query) {
    let rendered = q.to_string();
    let parsed = parse_query(&rendered)
        .unwrap_or_else(|e| panic!("{label}: rendered query failed to parse: {e}\n{rendered}"));
    assert_eq!(
        parsed.canonical_key(),
        q.canonical_key(),
        "{label}: round trip changed the query:\n{rendered}"
    );
}

/// Display → parse → Display is the identity on a constraint.
fn assert_constraint_roundtrip(label: &str, c: &Constraint) {
    let rendered = c.to_string();
    let parsed = parse_constraint(&c.name, &rendered).unwrap_or_else(|e| {
        panic!(
            "{label}/{}: rendered constraint failed to parse: {e}\n{rendered}",
            c.name
        )
    });
    assert_eq!(
        parsed.to_string(),
        rendered,
        "{label}/{}: round trip changed the constraint",
        c.name
    );
}

#[test]
fn ec1_queries_and_constraints_roundtrip() {
    let ec1 = Ec1::new(4, 2);
    assert_query_roundtrip("ec1", &ec1.query());
    for c in &ec1.schema().all_constraints() {
        assert_constraint_roundtrip("ec1", c);
    }
}

#[test]
fn ec2_queries_and_constraints_roundtrip() {
    let ec2 = Ec2::new(2, 3, 1);
    assert_query_roundtrip("ec2", &ec2.query());
    for c in &ec2.schema().all_constraints() {
        assert_constraint_roundtrip("ec2", c);
    }
}

#[test]
fn ec3_queries_and_constraints_roundtrip() {
    let ec3 = Ec3::new(3, 1);
    assert_query_roundtrip("ec3", &ec3.query());
    for c in &ec3.schema().all_constraints() {
        assert_constraint_roundtrip("ec3", c);
    }
}

#[test]
fn ec4_queries_and_constraints_roundtrip() {
    let ec4 = Ec4::new(3, 2, 1);
    assert_query_roundtrip("ec4", &Workload::query(&ec4));
    for c in &ec4.schema().all_constraints() {
        assert_constraint_roundtrip("ec4", c);
    }
}

#[test]
fn ec5_queries_and_constraints_roundtrip() {
    let ec5 = Ec5::new(4, true, true);
    assert_query_roundtrip("ec5-cycle", &ec5.cycle_query());
    assert_query_roundtrip("ec5-clique", &ec5.clique_query(4));
    assert_query_roundtrip("ec5-path", &ec5.path_query(3));
    for c in &ec5.schema().all_constraints() {
        assert_constraint_roundtrip("ec5", c);
    }
}

/// End to end on EC5: the triangle query written in the surface syntax,
/// optimized under parser-round-tripped wedge-view constraints, yields
/// exactly the plans of the programmatically built twin — the full
/// parse → chase → backchase pipeline on the new workload.
#[test]
fn parsed_triangle_drives_chase_and_backchase() {
    let parsed_q = parse_query(
        "select struct(N1 = e1.S, N2 = e2.S, N3 = e3.S) \
         from E e1, E e2, E e3 \
         where e1.T = e2.S and e2.T = e3.S and e3.T = e1.S",
    )
    .expect("surface triangle parses");

    let ec5 = Ec5::triangle();
    let built_q = ec5.cycle_query();
    assert_eq!(parsed_q.canonical_key(), built_q.canonical_key());

    let constraints: Vec<Constraint> = ec5
        .schema()
        .all_constraints()
        .iter()
        .map(|c| parse_constraint(&c.name, &c.to_string()).expect("constraint parses"))
        .collect();

    let cfg = BackchaseConfig::default();
    let from_parsed = chase_and_backchase(&parsed_q, &constraints, &cfg);
    let from_built = chase_and_backchase(&built_q, &ec5.schema().all_constraints(), &cfg);
    assert!(!from_parsed.timed_out);
    assert_eq!(from_parsed.plans.len(), from_built.plans.len());
    assert_eq!(from_parsed.explored, from_built.explored);
    let texts = |r: &chase_too_far::core::prelude::BackchaseResult| -> Vec<String> {
        r.plans.iter().map(|p| p.query.to_string()).collect()
    };
    assert_eq!(texts(&from_parsed), texts(&from_built));
    // The wedge rewrite survives the parser route too.
    assert!(
        from_parsed
            .plans
            .iter()
            .any(|p| p.query.to_string().contains("W ")),
        "no wedge plan from the parsed query"
    );
}

/// End to end: a query written in the surface syntax, optimized under
/// constraints that themselves went through the parser, yields exactly the
/// plans of the programmatically built equivalent — chase, backchase,
/// parallel frontier and all.
#[test]
fn parsed_query_drives_chase_and_backchase() {
    // The EC1 [2, 0] chain query, as a user would type it.
    let parsed_q = parse_query(
        "select struct(K1 = r1.K, K2 = r2.K) \
         from R1 r1, R2 r2 \
         where r1.N = r2.K",
    )
    .expect("surface query parses");

    let ec1 = Ec1::new(2, 0);
    let built_q = ec1.query();
    assert_eq!(parsed_q.canonical_key(), built_q.canonical_key());

    // Round-trip the schema's constraints through the parser too.
    let constraints: Vec<Constraint> = ec1
        .schema()
        .all_constraints()
        .iter()
        .map(|c| parse_constraint(&c.name, &c.to_string()).expect("constraint parses"))
        .collect();

    let cfg = BackchaseConfig::default();
    let from_parsed = chase_and_backchase(&parsed_q, &constraints, &cfg);
    let from_built = chase_and_backchase(&built_q, &ec1.schema().all_constraints(), &cfg);

    // 2 relations with one primary index each → 2² plans, same either way.
    assert_eq!(from_parsed.plans.len(), 4);
    assert_eq!(from_parsed.plans.len(), from_built.plans.len());
    assert_eq!(from_parsed.explored, from_built.explored);
    let texts = |r: &chase_too_far::core::prelude::BackchaseResult| -> Vec<String> {
        r.plans.iter().map(|p| p.query.to_string()).collect()
    };
    assert_eq!(texts(&from_parsed), texts(&from_built));
    assert!(!from_parsed.timed_out);
}
