//! Property-based tests (proptest) on the core data structures and the
//! optimizer's soundness invariant: *every plan, executed, agrees with the
//! original query*.

use std::collections::HashSet;

use chase_too_far::core::bitset::VarSet;
use chase_too_far::core::congruence::{Congruence, TermNode};
use chase_too_far::core::prelude::{
    chase, chase_query, same_plan, ChaseConfig, Optimizer, OptimizerConfig,
    Strategy as OptStrategy,
};
use chase_too_far::engine::{execute, Database};
use chase_too_far::ir::prelude::*;
use proptest::prelude::*;

// ---------------------------------------------------------------- VarSet --

proptest! {
    /// VarSet behaves like a HashSet<u32> under arbitrary operation traces.
    #[test]
    fn varset_matches_model(ops in prop::collection::vec((0u32..200, any::<bool>()), 0..100)) {
        let mut vs = VarSet::new();
        let mut model: HashSet<u32> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(vs.insert(Var(v)), model.insert(v));
            } else {
                prop_assert_eq!(vs.remove(Var(v)), model.remove(&v));
            }
            prop_assert_eq!(vs.len(), model.len());
            prop_assert_eq!(vs.contains(Var(v)), model.contains(&v));
        }
        let mut elems: Vec<u32> = model.into_iter().collect();
        elems.sort_unstable();
        let got: Vec<u32> = vs.iter().map(|v| v.0).collect();
        prop_assert_eq!(got, elems);
    }

    /// Union and subset agree with the model.
    #[test]
    fn varset_union_subset(a in prop::collection::hash_set(0u32..128, 0..40),
                           b in prop::collection::hash_set(0u32..128, 0..40)) {
        let va = VarSet::from_iter(a.iter().map(|&v| Var(v)));
        let vb = VarSet::from_iter(b.iter().map(|&v| Var(v)));
        let mut vu = va.clone();
        vu.union_with(&vb);
        let mu: HashSet<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(vu.len(), mu.len());
        prop_assert!(va.is_subset(&vu));
        prop_assert!(vb.is_subset(&vu));
        prop_assert_eq!(va.is_subset(&vb), a.is_subset(&b));
        prop_assert_eq!(va.intersects(&vb), !a.is_disjoint(&b));
    }
}

// ----------------------------------------------------------- Congruence --

proptest! {
    /// After arbitrary merges, `equal` is exactly the reflexive-symmetric-
    /// transitive closure of the merge edges (computed by a model union-find
    /// without congruence over plain variables).
    #[test]
    fn congruence_matches_union_find_on_vars(
        edges in prop::collection::vec((0u32..24, 0u32..24), 0..40)
    ) {
        let mut cong = Congruence::new();
        let terms: Vec<_> = (0..24).map(|i| cong.term(TermNode::Var(Var(i)))).collect();
        let mut model: Vec<u32> = (0..24).collect();
        fn find(m: &mut Vec<u32>, i: u32) -> u32 {
            let mut r = i;
            while m[r as usize] != r { r = m[r as usize]; }
            r
        }
        for (a, b) in edges {
            cong.merge(terms[a as usize], terms[b as usize]);
            let (ra, rb) = (find(&mut model, a), find(&mut model, b));
            model[ra as usize] = rb;
        }
        for i in 0..24u32 {
            for j in 0..24u32 {
                let expected = find(&mut model, i) == find(&mut model, j);
                prop_assert_eq!(cong.equal(terms[i as usize], terms[j as usize]), expected,
                    "vars {} {}", i, j);
            }
        }
    }

    /// Upward congruence: whenever x ≡ y, also x.A ≡ y.A, regardless of
    /// whether the field terms were created before or after the merges.
    #[test]
    fn congruence_upward_closure(
        edges in prop::collection::vec((0u32..12, 0u32..12), 0..20),
        before in any::<bool>()
    ) {
        let mut cong = Congruence::new();
        let vars: Vec<_> = (0..12).map(|i| cong.term(TermNode::Var(Var(i)))).collect();
        let mut fields = Vec::new();
        if before {
            fields = vars.iter().map(|&v| cong.term(TermNode::Field(v, sym("A")))).collect();
        }
        for &(a, b) in &edges {
            cong.merge(vars[a as usize], vars[b as usize]);
        }
        if !before {
            fields = vars.iter().map(|&v| cong.term(TermNode::Field(v, sym("A")))).collect();
        }
        for i in 0..12usize {
            for j in 0..12usize {
                if cong.equal(vars[i], vars[j]) {
                    prop_assert!(cong.equal(fields[i], fields[j]));
                }
            }
        }
    }
}

// ------------------------------------------------- Random chain queries --

/// A random chain-query scenario: `n` relations, `j ≤ n` secondary indexes,
/// data sizes and seeds.
fn chain_scenario() -> impl Strategy<Value = (usize, usize, u64)> {
    (1usize..=3, 0usize..=3, any::<u64>()).prop_map(|(n, j, seed)| (n, j.min(n), seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness, end to end: every plan the optimizer emits computes the
    /// same answer as the original query on random data.
    #[test]
    fn all_plans_agree_on_random_data((n, j, seed) in chain_scenario()) {
        let ec1 = chase_too_far::workloads::Ec1::new(n, j);
        let db = ec1.generate(120, 0.5, seed);
        let q = ec1.query();
        let optimizer = Optimizer::new(ec1.schema());
        let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(OptStrategy::Oqf));
        let norm = |rows: &[Value]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        let baseline = norm(&execute(&db, &q).unwrap().rows);
        for p in &res.plans {
            prop_assert_eq!(&norm(&execute(&db, &p.query).unwrap().rows), &baseline,
                "plan diverged:\n{}", p.query);
        }
    }

    /// The chase is inflationary and idempotent on random chain queries.
    #[test]
    fn chase_idempotent((n, j, _seed) in chain_scenario()) {
        let ec1 = chase_too_far::workloads::Ec1::new(n, j);
        let cs = ec1.schema().all_constraints();
        let q = ec1.query();
        let (mut db, s1) = chase_query(&q, &cs, ChaseConfig::default());
        prop_assert!(!s1.truncated);
        prop_assert!(db.query.from.len() >= q.from.len());
        let s2 = chase(&mut db, &cs, ChaseConfig::default());
        prop_assert_eq!(s2.steps_applied, 0);
    }
}

// ---------------------------------------------------- Query invariants --

fn arb_query() -> impl Strategy<Value = Query> {
    // Chains of 1..4 bindings over R0..R3 with random equalities & outputs.
    (1usize..=4, any::<u64>()).prop_map(|(n, seed)| {
        let mut q = Query::new();
        let vars: Vec<Var> = (0..n)
            .map(|i| q.bind(&format!("x{i}"), Range::Name(sym(&format!("R{}", i % 3)))))
            .collect();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for w in vars.windows(2) {
            if next() % 2 == 0 {
                q.equate(PathExpr::from(w[0]).dot("B"), PathExpr::from(w[1]).dot("A"));
            }
        }
        for (i, v) in vars.iter().enumerate() {
            if i == 0 || next() % 2 == 0 {
                q.output(&format!("O{i}"), PathExpr::from(*v).dot("A"));
            }
        }
        q
    })
}

proptest! {
    /// canonical_key is invariant under variable renaming.
    #[test]
    fn canonical_key_rename_invariant(q in arb_query(), off in 1u32..50) {
        prop_assert_eq!(q.canonical_key(), q.offset_vars(off).canonical_key());
    }

    /// same_plan is reflexive and rename-invariant.
    #[test]
    fn same_plan_reflexive(q in arb_query(), off in 1u32..50) {
        prop_assert!(same_plan(&q, &q));
        prop_assert!(same_plan(&q, &q.offset_vars(off)));
    }

    /// Minimization (no constraints) always yields plans no larger than the
    /// input and equivalent to it on data.
    #[test]
    fn minimization_shrinks_and_preserves(q in arb_query(), seed in any::<u64>()) {
        let optimizer = Optimizer::with_constraints(Schema::new(), vec![]);
        let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(OptStrategy::Full));
        prop_assert!(!res.plans.is_empty());
        for p in &res.plans {
            prop_assert!(p.arity <= q.arity());
        }
        // Execute on random data.
        let mut db = Database::new();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) % 5) as i64
        };
        for r in 0..3 {
            for _ in 0..8 {
                db.insert_row(
                    sym(&format!("R{r}")),
                    Value::record([(sym("A"), Value::Int(next())), (sym("B"), Value::Int(next()))]),
                );
            }
        }
        // C&B minimization is set-semantics (join elimination may drop
        // redundant bindings, changing multiplicities): compare distinct
        // answer sets, as the paper's containment theory does.
        let norm = |rows: &[Value]| {
            let mut v: Vec<String> = rows.iter().map(|x| x.to_string()).collect();
            v.sort();
            v.dedup();
            v
        };
        let baseline = norm(&execute(&db, &q).unwrap().rows);
        for p in &res.plans {
            prop_assert_eq!(&norm(&execute(&db, &p.query).unwrap().rows), &baseline,
                "minimized plan diverged:\n{}", p.query);
        }
    }
}
