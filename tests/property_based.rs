//! Property-based tests on the core data structures and the optimizer's
//! soundness invariant: *every plan, executed, agrees with the original
//! query*.
//!
//! The build environment has no registry access, so instead of an external property-testing framework
//! these run on a small in-repo harness: a seeded case loop (`cases`) drawing
//! inputs from the workspace's own [`SplitMix64`] generator. There is no
//! shrinking; on failure the harness reports the case index and per-case
//! seed, which reproduce the exact inputs deterministically.

// The std HashSet here is a deliberately *independent* model oracle for
// VarSet — only membership is compared, never iteration order — so the
// workspace-wide denial (clippy.toml) is waived for this test file.
#![allow(clippy::disallowed_types)]

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use chase_too_far::core::bitset::VarSet;
use chase_too_far::core::congruence::{Congruence, TermNode};
use chase_too_far::core::prelude::{
    chase, chase_and_backchase, chase_query, same_plan, BackchaseConfig, BackchaseResult,
    ChaseConfig, Optimizer, OptimizerConfig, Strategy as OptStrategy,
};
use chase_too_far::engine::prng::SplitMix64;
use chase_too_far::engine::{execute, Database};
use chase_too_far::ir::prelude::*;

// --------------------------------------------------------------- harness --

/// Runs `n` seeded cases of `property`, reporting the failing case index and
/// seed (enough to replay: seeds are derived, not random) on panic.
fn cases(name: &str, n: usize, property: impl Fn(&mut SplitMix64)) {
    for case in 0..n {
        // Derive per-case seeds from a fixed root so runs are reproducible
        // and cases are independent of each other.
        let seed = SplitMix64::seed_from_u64(0xC0B0_2000 + case as u64).next_u64();
        let mut rng = SplitMix64::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property `{name}` failed at case {case}/{n} (seed {seed:#x}):\n{msg}");
        }
    }
}

// ---------------------------------------------------------------- VarSet --

/// VarSet behaves like a HashSet<u32> under arbitrary operation traces.
#[test]
fn varset_matches_model() {
    cases("varset_matches_model", 64, |rng| {
        let n_ops = rng.gen_range(0usize..100);
        let mut vs = VarSet::new();
        let mut model: HashSet<u32> = HashSet::new();
        for _ in 0..n_ops {
            let v = rng.gen_range(0u32..200);
            if rng.gen_bool(0.5) {
                assert_eq!(vs.insert(Var(v)), model.insert(v));
            } else {
                assert_eq!(vs.remove(Var(v)), model.remove(&v));
            }
            assert_eq!(vs.len(), model.len());
            assert_eq!(vs.contains(Var(v)), model.contains(&v));
        }
        let mut elems: Vec<u32> = model.into_iter().collect();
        elems.sort_unstable();
        let got: Vec<u32> = vs.iter().map(|v| v.0).collect();
        assert_eq!(got, elems);
    });
}

/// Union and subset agree with the model.
#[test]
fn varset_union_subset() {
    let arb_set = |rng: &mut SplitMix64| -> HashSet<u32> {
        let len = rng.gen_range(0usize..40);
        (0..len).map(|_| rng.gen_range(0u32..128)).collect()
    };
    cases("varset_union_subset", 64, |rng| {
        let a = arb_set(rng);
        let b = arb_set(rng);
        let va = VarSet::from_iter(a.iter().map(|&v| Var(v)));
        let vb = VarSet::from_iter(b.iter().map(|&v| Var(v)));
        let mut vu = va.clone();
        vu.union_with(&vb);
        let mu: HashSet<u32> = a.union(&b).copied().collect();
        assert_eq!(vu.len(), mu.len());
        assert!(va.is_subset(&vu));
        assert!(vb.is_subset(&vu));
        assert_eq!(va.is_subset(&vb), a.is_subset(&b));
        assert_eq!(va.intersects(&vb), !a.is_disjoint(&b));
    });
}

// ----------------------------------------------------------- Congruence --

/// After arbitrary merges, `equal` is exactly the reflexive-symmetric-
/// transitive closure of the merge edges (computed by a model union-find
/// without congruence over plain variables).
#[test]
fn congruence_matches_union_find_on_vars() {
    cases("congruence_matches_union_find_on_vars", 48, |rng| {
        let n_edges = rng.gen_range(0usize..40);
        let mut cong = Congruence::new();
        let terms: Vec<_> = (0..24).map(|i| cong.term(TermNode::Var(Var(i)))).collect();
        let mut model: Vec<u32> = (0..24).collect();
        fn find(m: &mut [u32], i: u32) -> u32 {
            let mut r = i;
            while m[r as usize] != r {
                r = m[r as usize];
            }
            r
        }
        for _ in 0..n_edges {
            let a = rng.gen_range(0u32..24);
            let b = rng.gen_range(0u32..24);
            cong.merge(terms[a as usize], terms[b as usize]);
            let (ra, rb) = (find(&mut model, a), find(&mut model, b));
            model[ra as usize] = rb;
        }
        for i in 0..24u32 {
            for j in 0..24u32 {
                let expected = find(&mut model, i) == find(&mut model, j);
                assert_eq!(
                    cong.equal(terms[i as usize], terms[j as usize]),
                    expected,
                    "vars {i} {j}"
                );
            }
        }
    });
}

/// Upward congruence: whenever x ≡ y, also x.A ≡ y.A, regardless of whether
/// the field terms were created before or after the merges.
#[test]
fn congruence_upward_closure() {
    cases("congruence_upward_closure", 48, |rng| {
        let n_edges = rng.gen_range(0usize..20);
        let edges: Vec<(u32, u32)> = (0..n_edges)
            .map(|_| (rng.gen_range(0u32..12), rng.gen_range(0u32..12)))
            .collect();
        let before = rng.gen_bool(0.5);
        let mut cong = Congruence::new();
        let vars: Vec<_> = (0..12).map(|i| cong.term(TermNode::Var(Var(i)))).collect();
        let mut fields = Vec::new();
        if before {
            fields = vars
                .iter()
                .map(|&v| cong.term(TermNode::Field(v, sym("A"))))
                .collect();
        }
        for &(a, b) in &edges {
            cong.merge(vars[a as usize], vars[b as usize]);
        }
        if !before {
            fields = vars
                .iter()
                .map(|&v| cong.term(TermNode::Field(v, sym("A"))))
                .collect();
        }
        for i in 0..12usize {
            for j in 0..12usize {
                if cong.equal(vars[i], vars[j]) {
                    assert!(cong.equal(fields[i], fields[j]));
                }
            }
        }
    });
}

// ------------------------------------------ Congruence savepoints (diff) --

/// One replayable congruence operation; the surviving (never rolled back)
/// prefix of a trace rebuilds the reference closure from scratch.
#[derive(Clone, Debug)]
enum CongOp {
    /// Intern a path (scratch mode when the flag is set — exercising probe
    /// promotion under savepoints too).
    Intern(PathExpr, bool),
    /// Merge the terms produced by the i-th and j-th intern ops.
    Merge(usize, usize),
}

/// A random path over a small vocabulary: variables, constants, fields,
/// dictionary lookups and struct constructors (the latter drive the
/// struct-injectivity cascades whose rollback we want to stress).
fn arb_cong_path(rng: &mut SplitMix64, depth: usize) -> PathExpr {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        if rng.gen_bool(0.2) {
            return PathExpr::from(rng.gen_range(0i64..3));
        }
        return PathExpr::from(Var(rng.gen_range(0u32..6)));
    }
    match rng.gen_range(0u32..4) {
        0 => arb_cong_path(rng, depth - 1).dot(["A", "B"][rng.gen_range(0usize..2)]),
        1 => PathExpr::Lookup(sym("M"), Box::new(arb_cong_path(rng, depth - 1))),
        _ => {
            let mut fields = vec![(sym("A"), arb_cong_path(rng, depth - 1))];
            if rng.gen_bool(0.5) {
                fields.push((sym("B"), arb_cong_path(rng, depth - 1)));
            }
            PathExpr::MkStruct(fields)
        }
    }
}

fn apply_cong_op(
    c: &mut Congruence,
    terms: &mut Vec<chase_too_far::core::congruence::TermId>,
    op: &CongOp,
) {
    match op {
        CongOp::Intern(p, scratch) => {
            c.set_scratch_mode(*scratch);
            let t = c.intern_path(p);
            c.set_scratch_mode(false);
            terms.push(t);
        }
        CongOp::Merge(i, j) => c.merge(terms[*i], terms[*j]),
    }
}

/// After random interleavings of intern / merge / save / rollback — nested
/// savepoints included — the live closure answers `find`/`equal`/
/// `class_members`/`is_scratch` exactly like a from-scratch rebuild of the
/// surviving operations: rollback must leave no residue and lose nothing.
#[test]
fn congruence_savepoints_match_rebuild() {
    cases("congruence_savepoints_match_rebuild", 48, |rng| {
        let mut live = Congruence::new();
        let mut live_terms = Vec::new();
        // Surviving trace + the savepoint stack with the trace/term lengths
        // at each save (rolling back to stack[k] discards deeper entries,
        // exercising the outer-rollback-consumes-inner rule).
        let mut ops: Vec<CongOp> = Vec::new();
        let mut stack: Vec<(chase_too_far::core::congruence::Savepoint, usize, usize)> = Vec::new();
        for _ in 0..rng.gen_range(10usize..60) {
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    let op = CongOp::Intern(arb_cong_path(rng, 3), rng.gen_bool(0.25));
                    apply_cong_op(&mut live, &mut live_terms, &op);
                    ops.push(op);
                }
                5 | 6 => {
                    if live_terms.len() >= 2 {
                        let i = rng.gen_range(0usize..live_terms.len());
                        let j = rng.gen_range(0usize..live_terms.len());
                        let op = CongOp::Merge(i, j);
                        apply_cong_op(&mut live, &mut live_terms, &op);
                        ops.push(op);
                    }
                }
                7 | 8 => stack.push((live.save(), ops.len(), live_terms.len())),
                _ => {
                    if !stack.is_empty() {
                        let k = rng.gen_range(0usize..stack.len());
                        stack.truncate(k + 1);
                        let (sp, ops_len, terms_len) = stack.pop().expect("nonempty");
                        live.rollback(sp);
                        ops.truncate(ops_len);
                        live_terms.truncate(terms_len);
                    }
                }
            }
        }
        // Reference: replay the surviving trace on a fresh closure.
        let mut fresh = Congruence::new();
        let mut fresh_terms = Vec::new();
        for op in &ops {
            apply_cong_op(&mut fresh, &mut fresh_terms, op);
        }
        assert_eq!(live.len(), fresh.len(), "arena sizes diverged");
        assert_eq!(live.is_inconsistent(), fresh.is_inconsistent());
        assert_eq!(live_terms, fresh_terms, "term ids diverged");
        for (i, &t) in live_terms.iter().enumerate() {
            assert_eq!(
                live.is_scratch(t),
                fresh.is_scratch(t),
                "scratch flag diverged at term {i}"
            );
            let mut lm = live.class_members(t);
            let mut fm = fresh.class_members(t);
            lm.sort_unstable();
            fm.sort_unstable();
            assert_eq!(lm, fm, "class members diverged at term {i}");
            for (j, &u) in live_terms.iter().enumerate() {
                assert_eq!(
                    live.equal(t, u),
                    fresh.equal(t, u),
                    "equal({i}, {j}) diverged"
                );
            }
        }
    });
}

// ------------------------------------------------- Random chain queries --

/// A random chain-query scenario: `n` relations, `j ≤ n` secondary indexes,
/// and a data seed.
fn chain_scenario(rng: &mut SplitMix64) -> (usize, usize, u64) {
    let n = rng.gen_range(1usize..4);
    let j = rng.gen_range(0usize..4).min(n);
    (n, j, rng.next_u64())
}

/// Soundness, end to end: every plan the optimizer emits computes the same
/// answer as the original query on random data.
#[test]
fn all_plans_agree_on_random_data() {
    cases("all_plans_agree_on_random_data", 12, |rng| {
        let (n, j, seed) = chain_scenario(rng);
        let ec1 = chase_too_far::workloads::Ec1::new(n, j);
        let db = ec1.generate(120, 0.5, seed);
        let q = ec1.query();
        let optimizer = Optimizer::new(ec1.schema());
        let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(OptStrategy::Oqf));
        let norm = |rows: &[Value]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        let baseline = norm(&execute(&db, &q).unwrap().rows);
        for p in &res.plans {
            assert_eq!(
                norm(&execute(&db, &p.query).unwrap().rows),
                baseline,
                "plan diverged:\n{}",
                p.query
            );
        }
    });
}

/// The chase is inflationary and idempotent on random chain queries.
#[test]
fn chase_idempotent() {
    cases("chase_idempotent", 12, |rng| {
        let (n, j, _seed) = chain_scenario(rng);
        let ec1 = chase_too_far::workloads::Ec1::new(n, j);
        let cs = ec1.schema().all_constraints();
        let q = ec1.query();
        let (mut db, s1) = chase_query(&q, &cs, ChaseConfig::default());
        assert!(!s1.truncated);
        assert!(db.query.from.len() >= q.from.len());
        let s2 = chase(&mut db, &cs, ChaseConfig::default());
        assert_eq!(s2.steps_applied, 0);
    });
}

// ------------------------------------------- Parallel backchase (diff) --

/// One plan's identity: kept binding set plus the full query text. Vec
/// equality therefore checks the plan *set, order included*, byte for byte.
fn backchase_fingerprint(res: &BackchaseResult) -> Vec<String> {
    res.plans
        .iter()
        .map(|p| format!("{:?} :: {}", p.bindings, p.query))
        .collect()
}

/// Runs the backchase sequentially and at 2/4/8 worker threads, asserting
/// byte-identical plans (order included) and identical `explored` counts —
/// the determinism contract of `cnb_core::backchase`.
fn assert_thread_invariant(q: &Query, cs: &[Constraint], label: &str) {
    let cfg = |threads: usize| BackchaseConfig {
        threads,
        ..BackchaseConfig::default()
    };
    let seq = chase_and_backchase(q, cs, &cfg(1));
    assert!(!seq.timed_out, "{label}: sequential run timed out");
    let seq_fp = backchase_fingerprint(&seq);
    for threads in [2usize, 4, 8] {
        let par = chase_and_backchase(q, cs, &cfg(threads));
        assert!(!par.timed_out, "{label}: {threads}-thread run timed out");
        assert_eq!(
            seq_fp,
            backchase_fingerprint(&par),
            "{label}: plans or their order diverged at {threads} threads"
        );
        assert_eq!(
            seq.explored, par.explored,
            "{label}: explored counts diverged at {threads} threads"
        );
        assert_eq!(seq.universal_arity, par.universal_arity);
    }
}

/// Differential suite, workload half: random EC1 chain scenarios (relations,
/// primary/secondary indexes) behave identically at 1/2/4/8 threads.
#[test]
fn parallel_backchase_differential_ec1() {
    cases("parallel_backchase_differential_ec1", 8, |rng| {
        let (n, j, _seed) = chain_scenario(rng);
        let ec1 = chase_too_far::workloads::Ec1::new(n, j);
        assert_thread_invariant(&ec1.query(), &ec1.schema().all_constraints(), "ec1");
    });
}

/// Differential suite, random half: arbitrary chain queries under randomly
/// drawn key and referential constraints behave identically at 1/2/4/8
/// threads.
#[test]
fn parallel_backchase_differential_random() {
    cases("parallel_backchase_differential_random", 12, |rng| {
        let q = arb_query(rng);
        let mut cs: Vec<Constraint> = Vec::new();
        for i in 0..3u32 {
            if rng.gen_bool(0.5) {
                cs.push(key_constraint(sym(&format!("R{i}")), sym("A")));
            }
            if i < 2 && rng.gen_bool(0.3) {
                // R_i.B references R_{i+1}.A — an inclusion/RIC constraint.
                // Only forward edges: a constraint cycle would make the
                // chase non-terminating (cap-truncated) and the test slow.
                let mut ric = Constraint::new(format!("RIC{i}"));
                let r = ric.forall("r", Range::Name(sym(&format!("R{i}"))));
                let s = ric.exists("s", Range::Name(sym(&format!("R{}", i + 1))));
                ric.then(PathExpr::from(r).dot("B"), PathExpr::from(s).dot("A"));
                cs.push(ric);
            }
        }
        assert_thread_invariant(&q, &cs, "random");
    });
}

/// Differential suite, star-schema half: random EC4 configurations
/// (dimensions, materialized fact–dim views, FK indexes) behave identically
/// at 1/2/4/8 threads.
#[test]
fn parallel_backchase_differential_ec4() {
    cases("parallel_backchase_differential_ec4", 6, |rng| {
        let dims = rng.gen_range(2usize..4);
        let views = rng.gen_range(0usize..dims.min(2) + 1);
        let indexed = rng.gen_range(0usize..2);
        let ec4 = chase_too_far::workloads::Ec4::new(dims, views, indexed);
        assert_thread_invariant(&ec4.query(), &ec4.schema().all_constraints(), "ec4");
    });
}

/// Differential suite, cyclic half: random EC5 configurations (triangle or
/// 4-cycle, wedge view on/off, source index on triangles) behave
/// identically at 1/2/4/8 threads.
#[test]
fn parallel_backchase_differential_ec5() {
    cases("parallel_backchase_differential_ec5", 6, |rng| {
        let cycle = rng.gen_range(3usize..5);
        let wedge = rng.gen_bool(0.7);
        // The source index doubles the universal plan's per-edge bindings;
        // keep it to triangles so debug-mode cases stay fast.
        let index = cycle == 3 && rng.gen_bool(0.5);
        let ec5 = chase_too_far::workloads::Ec5::new(cycle, wedge, index);
        assert_thread_invariant(&ec5.cycle_query(), &ec5.schema().all_constraints(), "ec5");
    });
}

// ------------------------------------------------ Cost model feedback --

/// Observation feedback on `cnb_core::cost::CostModel`, seeded by real
/// `ExecStats` from the EC4/EC5 workloads: the first measurement of any
/// parameter — collection cardinality, join selectivity, set fan-out —
/// replaces the static estimate; subsequent measurements fold in as a
/// running mean that must equal the arithmetic mean of everything observed;
/// and the sample counters track the feed. All three observation channels
/// follow the same policy, so repeated cached-plan execution converges
/// instead of letting the last batch overwrite the state.
#[test]
fn cost_observation_feedback_matches_arithmetic_mean() {
    use chase_too_far::core::prelude::CostModel;
    use chase_too_far::engine::feed_cost_model;
    use chase_too_far::workloads::{DataScale, Ec4, Ec5, Workload};
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    cases(
        "cost_observation_feedback_matches_arithmetic_mean",
        8,
        |rng| {
            let star = rng.gen_bool(0.5);
            let (w, anchor): (Box<dyn Workload>, Symbol) = if star {
                (Box::new(Ec4::new(rng.gen_range(2usize..4), 1, 0)), sym("F"))
            } else {
                (Box::new(Ec5::triangle()), sym("E"))
            };
            let scale = DataScale::new(rng.gen_range(60usize..140), rng.next_u64());
            let db = w.generate_at(scale);
            let q = w.query();

            // Harvest stats from the original query plus a few generated plans.
            let mut all_stats = vec![execute(&db, &q).unwrap().stats];
            for p in w.optimize().plans.iter().take(3) {
                all_stats.push(execute(&db, &p.query).unwrap().stats);
            }

            // Cardinality feedback: the first measurement replaces the
            // estimate exactly, and the main collection's measured size is
            // the generated table's size.
            let mut model = CostModel::default();
            feed_cost_model(&all_stats[0], &mut model);
            assert_eq!(
                model.cardinalities.get(&anchor),
                Some(&(db.table(anchor).len() as f64)),
                "anchor table cardinality must be measured exactly"
            );

            // Feed every execution and replay the same observations by
            // hand: each collection's stored cardinality must equal the
            // arithmetic mean of all its measurements (first sample
            // replaces, later ones average — the same policy as
            // selectivity/fanout), and the per-collection sample counter
            // must track the feed.
            let mut model = CostModel::default().with_cardinality(anchor, 1e9);
            let mut by_name: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
            for stats in &all_stats {
                feed_cost_model(stats, &mut model);
                for (name, card) in stats.observed_cardinalities() {
                    by_name.entry(name.to_string()).or_default().push(card);
                }
            }
            for (name, cards) in &by_name {
                let got = *model.cardinalities.get(&sym(name)).unwrap();
                let m = mean(cards);
                assert!(
                    (got - m).abs() <= 1e-12 + 1e-9 * m,
                    "{name}: running mean {got} != arithmetic mean {m} \
                     (builder seed must not count as a sample)"
                );
                assert_eq!(
                    model.cardinality_samples.get(&sym(name)),
                    Some(&cards.len())
                );
            }

            // Selectivity feedback: replay the same samples by hand and compare
            // against the arithmetic mean.
            let sels: Vec<f64> = all_stats
                .iter()
                .flat_map(|s| s.observed_join_selectivities())
                .map(|s| s.clamp(1e-9, 1.0))
                .collect();
            let mut model = CostModel::default();
            let default_sel = model.join_selectivity;
            for (i, &s) in sels.iter().enumerate() {
                model.observe_join_selectivity(s);
                if i == 0 {
                    assert_eq!(
                        model.join_selectivity, s,
                        "first sample must replace the default, not average with it"
                    );
                }
            }
            assert_eq!(model.selectivity_samples, sels.len());
            if sels.is_empty() {
                assert_eq!(model.join_selectivity, default_sel);
            } else {
                let m = mean(&sels);
                assert!(
                    (model.join_selectivity - m).abs() <= 1e-12 + 1e-9 * m,
                    "running mean {} != arithmetic mean {m}",
                    model.join_selectivity
                );
            }

            // Fan-out feedback obeys the same algebra on arbitrary samples.
            let fans: Vec<f64> = (0..rng.gen_range(1usize..12))
                .map(|_| rng.gen_f64() * 8.0)
                .collect();
            let mut model = CostModel::default();
            model.observe_fanout(fans[0]);
            assert_eq!(model.fanout, fans[0], "first sample replaces the default");
            for &f in &fans[1..] {
                model.observe_fanout(f);
            }
            assert_eq!(model.fanout_samples, fans.len());
            let m = mean(&fans);
            assert!(
                (model.fanout - m).abs() <= 1e-12 + 1e-9 * m,
                "running mean {} != arithmetic mean {m}",
                model.fanout
            );
        },
    );
}

// ---------------------------------------------------- Query invariants --

/// A random chain of 1..4 bindings over R0..R3 with random equalities and
/// outputs.
fn arb_query(rng: &mut SplitMix64) -> Query {
    let n = rng.gen_range(1usize..5);
    let mut q = Query::new();
    let vars: Vec<Var> = (0..n)
        .map(|i| q.bind(&format!("x{i}"), Range::Name(sym(&format!("R{}", i % 3)))))
        .collect();
    for w in vars.windows(2) {
        if rng.gen_bool(0.5) {
            q.equate(PathExpr::from(w[0]).dot("B"), PathExpr::from(w[1]).dot("A"));
        }
    }
    for (i, v) in vars.iter().enumerate() {
        if i == 0 || rng.gen_bool(0.5) {
            q.output(&format!("O{i}"), PathExpr::from(*v).dot("A"));
        }
    }
    q
}

/// canonical_key is invariant under variable renaming.
#[test]
fn canonical_key_rename_invariant() {
    cases("canonical_key_rename_invariant", 64, |rng| {
        let q = arb_query(rng);
        let off = rng.gen_range(1u32..50);
        assert_eq!(q.canonical_key(), q.offset_vars(off).canonical_key());
    });
}

/// same_plan is reflexive and rename-invariant.
#[test]
fn same_plan_reflexive() {
    cases("same_plan_reflexive", 64, |rng| {
        let q = arb_query(rng);
        let off = rng.gen_range(1u32..50);
        assert!(same_plan(&q, &q));
        assert!(same_plan(&q, &q.offset_vars(off)));
    });
}

/// Minimization (no constraints) always yields plans no larger than the
/// input and equivalent to it on data.
#[test]
fn minimization_shrinks_and_preserves() {
    cases("minimization_shrinks_and_preserves", 24, |rng| {
        let q = arb_query(rng);
        let optimizer = Optimizer::with_constraints(Schema::new(), vec![]);
        let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(OptStrategy::Full));
        assert!(!res.plans.is_empty());
        for p in &res.plans {
            assert!(p.arity <= q.arity());
        }
        // Execute on random data.
        let mut db = Database::new();
        for r in 0..3 {
            for _ in 0..8 {
                db.insert_row(
                    sym(&format!("R{r}")),
                    Value::record([
                        (sym("A"), Value::Int(rng.gen_range(0i64..5))),
                        (sym("B"), Value::Int(rng.gen_range(0i64..5))),
                    ]),
                );
            }
        }
        // C&B minimization is set-semantics (join elimination may drop
        // redundant bindings, changing multiplicities): compare distinct
        // answer sets, as the paper's containment theory does.
        let norm = |rows: &[Value]| {
            let mut v: Vec<String> = rows.iter().map(|x| x.to_string()).collect();
            v.sort();
            v.dedup();
            v
        };
        let baseline = norm(&execute(&db, &q).unwrap().rows);
        for p in &res.plans {
            assert_eq!(
                norm(&execute(&db, &p.query).unwrap().rows),
                baseline,
                "minimized plan diverged:\n{}",
                p.query
            );
        }
    });
}

// ------------------------------------------------------- Serving path --

/// A plan served from a warm cache hit is *byte-identical* to the plan a
/// cold server (fresh optimizer, empty cache) produces for the same
/// request: planning is a pure function of the parameterized template and
/// the constraint set, so binding cached template plans at execution time
/// must be indistinguishable from re-planning — rendered text and
/// structure both.
#[test]
fn cache_hits_serve_byte_identical_plans() {
    use chase_too_far::engine::PlanServer;
    use chase_too_far::workloads::{suite, DataScale};
    let scale = DataScale::smoke();
    for w in suite() {
        let strategy = w.expectations().strategy;
        let mut warm = PlanServer::new(w.optimizer(), OptimizerConfig::with_strategy(strategy));
        let planted = warm.plan(&w.serving_query(scale, 0));
        assert!(!planted.cache_hit, "{}: first request must miss", w.name());
        for pick in [1u64, 5, 13] {
            let q = w.serving_query(scale, pick);
            let hit = warm.plan(&q);
            assert!(hit.cache_hit, "{}: pick {pick} must hit", w.name());
            let mut cold = PlanServer::new(w.optimizer(), OptimizerConfig::with_strategy(strategy));
            let miss = cold.plan(&q);
            assert!(!miss.cache_hit);
            assert_eq!(
                hit.plan.to_string(),
                miss.plan.to_string(),
                "{} pick {pick}: cached plan renders differently from the cold plan",
                w.name()
            );
            assert_eq!(
                hit.plan,
                miss.plan,
                "{} pick {pick}: cached plan differs structurally from the cold plan",
                w.name()
            );
        }
    }
}

// --------------------------------------------------- Serving under pressure --

/// Requests a seeded [`FaultPlan`] does not touch are *byte-identical* to a
/// fault-free run — at 1, 2, 4 and 8 executor threads — and every faulted
/// request surfaces as a typed error, never as wrong or partial rows.
#[test]
fn fault_free_requests_are_byte_identical_at_every_thread_count() {
    use chase_too_far::engine::{FaultPlan, PlanServer, ServeConfig, ServeError, VirtualClock};

    let mut schema = Schema::new();
    schema.add_relation(
        "R",
        [
            (sym("K"), Type::Int),
            (sym("N"), Type::Int),
            (sym("D"), Type::Int),
        ],
    );
    add_primary_index(&mut schema, sym("R"), sym("K"), "PI");
    let mut db = Database::new();
    for i in 0..40i64 {
        db.insert_row(
            sym("R"),
            Value::record([
                (sym("K"), Value::Int(i)),
                (sym("N"), Value::Int((i * 7) % 40)),
                (sym("D"), Value::Int(i * 100)),
            ]),
        );
    }
    db.materialize_physical(&schema).unwrap();
    let point = |k: i64| {
        let mut q = Query::new();
        let r = q.bind("r", Range::Name(sym("R")));
        q.equate(PathExpr::from(r).dot("K"), PathExpr::from(k));
        q.output("D", PathExpr::from(r).dot("D"));
        q
    };
    let mk_server = || {
        PlanServer::new(
            Optimizer::new(schema.clone()),
            OptimizerConfig::with_strategy(OptStrategy::Full),
        )
    };

    cases(
        "fault_free_requests_are_byte_identical_at_every_thread_count",
        6,
        |rng| {
            let n = rng.gen_range(5usize..30);
            let requests: Vec<Query> = (0..n).map(|_| point(rng.gen_range(0i64..40))).collect();
            let plan = FaultPlan::failures(rng.next_u64(), 0.35);
            let retries = rng.gen_range(0usize..3);
            let cfg = ServeConfig::unbounded().with_max_retries(retries);

            let fault_free: Vec<Vec<Value>> = mk_server()
                .serve_batch(&db, &requests, 1)
                .into_iter()
                .map(|r| r.unwrap().1.rows)
                .collect();
            // Which requests survive is decided by the plan alone.
            let survives: Vec<bool> = (0..n)
                .map(|i| plan.leading_failures(i) <= retries)
                .collect();

            let mut baseline: Option<Vec<String>> = None;
            for threads in [1usize, 2, 4, 8] {
                let outcomes = mk_server().serve_batch_under(
                    &db,
                    &requests,
                    threads,
                    &cfg,
                    &VirtualClock::frozen(),
                    Some(&plan),
                );
                let rendered: Vec<String> = outcomes
                    .iter()
                    .enumerate()
                    .map(|(i, o)| match &o.result {
                        Ok((_, exec)) => {
                            assert!(survives[i], "request {i} should have been faulted");
                            assert_eq!(
                                exec.rows, fault_free[i],
                                "threads={threads} request {i}: fault-free request diverged"
                            );
                            format!("ok:{:?}:{}", exec.rows, o.retries)
                        }
                        Err(e @ ServeError::FaultInjected { .. })
                        | Err(e @ ServeError::RetriesExhausted { .. }) => {
                            assert!(!survives[i], "request {i} faulted unexpectedly");
                            format!("fault:{e:?}:{}", o.retries)
                        }
                        Err(e) => panic!("threads={threads} request {i}: unexpected {e:?}"),
                    })
                    .collect();
                match &baseline {
                    None => baseline = Some(rendered),
                    Some(b) => assert_eq!(&rendered, b, "threads={threads}: outcomes drifted"),
                }
            }
        },
    );
}

/// Admission decisions are a pure function of (requests, config, cost
/// model): reruns, thread counts, and interleavings never flip a verdict,
/// and the shed set is exactly the over-budget set.
#[test]
fn admission_decisions_are_a_pure_function_of_inputs() {
    use chase_too_far::core::cost::CostModel;
    use chase_too_far::engine::{PlanServer, ServeConfig, ServeError, VirtualClock};

    let mut schema = Schema::new();
    schema.add_relation("R", [(sym("K"), Type::Int), (sym("D"), Type::Int)]);
    add_primary_index(&mut schema, sym("R"), sym("K"), "PI");
    schema.add_relation("F", [(sym("A"), Type::Int), (sym("B"), Type::Int)]);
    let mut db = Database::new();
    for i in 0..30i64 {
        db.insert_row(
            sym("R"),
            Value::record([(sym("K"), Value::Int(i)), (sym("D"), Value::Int(i * 2))]),
        );
        db.insert_row(
            sym("F"),
            Value::record([
                (sym("A"), Value::Int(i % 6)),
                (sym("B"), Value::Int((i * 5) % 6)),
            ]),
        );
    }
    db.materialize_physical(&schema).unwrap();
    let cheap = |k: i64| {
        let mut q = Query::new();
        let r = q.bind("r", Range::Name(sym("R")));
        q.equate(PathExpr::from(r).dot("K"), PathExpr::from(k));
        q.output("D", PathExpr::from(r).dot("D"));
        q
    };
    let heavy = |b: i64| {
        let mut q = Query::new();
        let x = q.bind("x", Range::Name(sym("F")));
        let y = q.bind("y", Range::Name(sym("F")));
        q.equate(PathExpr::from(x).dot("B"), PathExpr::from(y).dot("A"));
        q.equate(PathExpr::from(y).dot("B"), PathExpr::from(b));
        q.output("A", PathExpr::from(x).dot("A"));
        q
    };
    let model = CostModel::default().with_cardinalities(db.cardinalities());
    let mk_server = || {
        PlanServer::new(
            Optimizer::new(schema.clone()),
            OptimizerConfig::with_strategy(OptStrategy::Full),
        )
        .with_cost_model(model.clone())
    };
    let (cheap_cost, heavy_cost) = {
        let mut s = mk_server();
        let c = s.plan(&cheap(0)).plan;
        let h = s.plan(&heavy(0)).plan;
        (s.cost_model().cost(&c), s.cost_model().cost(&h))
    };
    assert!(heavy_cost > cheap_cost);

    cases(
        "admission_decisions_are_a_pure_function_of_inputs",
        6,
        |rng| {
            let n = rng.gen_range(4usize..24);
            let requests: Vec<Query> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        heavy(rng.gen_range(0i64..6))
                    } else {
                        cheap(rng.gen_range(0i64..30))
                    }
                })
                .collect();
            // A budget drawn anywhere in (cheap, heavy) sheds exactly the
            // heavy shapes; outside that band it sheds all or none.
            let t = rng.gen_range(0u32..1000) as f64 / 999.0;
            let budget = cheap_cost + t * (heavy_cost - cheap_cost);
            let cfg = ServeConfig::unbounded().with_cost_budget(budget);
            let mut baseline: Option<Vec<bool>> = None;
            for threads in [1usize, 4] {
                for _rerun in 0..2 {
                    let outcomes = mk_server().serve_batch_under(
                        &db,
                        &requests,
                        threads,
                        &cfg,
                        &VirtualClock::frozen(),
                        None,
                    );
                    let shed: Vec<bool> = outcomes
                        .iter()
                        .map(|o| match &o.result {
                            Ok(_) => false,
                            Err(ServeError::Rejected { cost, budget: b }) => {
                                assert!(cost > b, "rejection must be over budget");
                                true
                            }
                            Err(e) => panic!("unexpected {e:?}"),
                        })
                        .collect();
                    // The verdict is exactly the per-request cost test.
                    for (i, q) in requests.iter().enumerate() {
                        let mut probe = mk_server();
                        let cost = model.cost(&probe.plan(q).plan);
                        assert_eq!(
                            shed[i],
                            cost > budget,
                            "request {i}: decision disagrees with its price"
                        );
                    }
                    match &baseline {
                        None => baseline = Some(shed),
                        Some(b) => assert_eq!(&shed, b, "threads={threads}: decisions drifted"),
                    }
                }
            }
        },
    );
}
