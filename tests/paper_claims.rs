//! Integration tests for the paper's headline claims, spanning all crates.

use chase_too_far::core::prelude::*;
use chase_too_far::engine::execute;
use chase_too_far::ir::prelude::*;
use chase_too_far::workloads::{ec2::Ec2DataSpec, Ec1, Ec2, Ec3, Example21, Example22};

/// §2, Example 2.1. Two claims:
///
/// 1. an index plan over `I` exists among the minimal plans (our backchase
///    prefers the strictly smaller index-scan `dom I` over the paper's
///    S-probing plan P, which it subsumes — see EXPERIMENTS.md);
/// 2. the paper's plan P — scan `S`, probe `I[struct(A = s.A, B = b,
///    C = c)]` — is equivalent to the query *iff* the RIC `R.A → S.A`
///    holds. This is the example's actual point: a semantic constraint
///    enabling a physical structure.
#[test]
fn example21_index_unlocked_by_ric() {
    let ex = Example21::new();
    let optimizer = Optimizer::new(ex.schema.clone());
    let res = optimizer.optimize(&ex.query, &OptimizerConfig::with_strategy(Strategy::Full));
    assert!(
        res.plans
            .iter()
            .any(|p| p.physical_used.contains(&sym("I"))),
        "an index plan must exist"
    );

    // Build the paper's plan P explicitly (with the dom-binding that our
    // formalization makes explicit): from S s, dom I k where
    // k = struct(A = s.A, B = 7, C = 'c0'), selecting s.A and I[k].E.
    let mut p = Query::new();
    p.reserve_vars(ex.query.var_bound());
    let s = p.bind("s", Range::Name(sym("S")));
    let k = p.bind("k", Range::Dom(sym("I")));
    p.equate(
        PathExpr::from(k),
        PathExpr::MkStruct(vec![
            (sym("A"), PathExpr::from(s).dot("A")),
            (sym("B"), PathExpr::from(ex.b)),
            (sym("C"), PathExpr::Const(Value::str(ex.c))),
        ]),
    );
    p.output("A", PathExpr::from(s).dot("A"));
    p.output("E", PathExpr::from(k).lookup_in("I").dot("E"));

    // EquivChecker::equivalent(c) proves the containment c ⊆ q0 (the other
    // direction holds by construction inside the backchase). For the
    // hand-built P we check both containments explicitly.
    let both = |constraints: &[Constraint]| {
        let p_in_q = EquivChecker::new(&ex.query, constraints, ChaseConfig::default())
            .equivalent(&p)
            .0;
        let q_in_p = EquivChecker::new(&p, constraints, ChaseConfig::default())
            .equivalent(&ex.query)
            .0;
        (p_in_q, q_in_p)
    };

    // With the RIC: equivalent in both directions.
    let with_ric = ex.schema.all_constraints();
    assert_eq!(both(&with_ric), (true, true), "P ≡ Q under the RIC");

    // Without the RIC (index constraints only): P ⊆ Q still holds, but
    // Q ⊆ P fails — P misses R-tuples whose A value is absent from S.
    let without_ric: Vec<Constraint> = ex
        .schema
        .skeletons()
        .iter()
        .flat_map(|sk| [sk.forward.clone(), sk.backward.clone()])
        .collect();
    assert_eq!(
        both(&without_ric),
        (true, false),
        "without the RIC, P is not a valid rewriting"
    );
}

/// §2, Example 2.2: the double-view plan appears iff the key holds.
#[test]
fn example22_key_gates_double_view_plan() {
    for with_key in [false, true] {
        let ex = Example22::new(with_key);
        let optimizer = Optimizer::new(ex.schema.clone());
        let res = optimizer.optimize(&ex.query, &OptimizerConfig::with_strategy(Strategy::Full));
        let double = res.plans.iter().any(|p| p.physical_used.len() == 2);
        assert_eq!(double, with_key);
    }
}

/// §3.2, Example 3.1: a chain of n single-index relations has exactly 2^n
/// plans, and OQF finds them with exponentially less exploration than FB.
#[test]
fn example31_two_to_the_n_plans() {
    for n in 1..=4usize {
        let ec1 = Ec1::new(n, 0);
        let optimizer = Optimizer::new(ec1.schema());
        let q = ec1.query();
        let fb = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Full));
        let oqf = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Oqf));
        assert_eq!(fb.plans.len(), 1 << n, "FB on n={n}");
        assert_eq!(oqf.plans.len(), 1 << n, "OQF on n={n}");
        if n >= 3 {
            assert!(oqf.explored < fb.explored, "stratification must pay off");
        }
    }
}

/// Theorem 3.2: OQF is complete (produces FB's plan set) on skeleton
/// schemas — checked on an EC2 grid via plan-set equality, not just counts.
#[test]
fn theorem32_oqf_complete_on_skeletons() {
    for (s, c, v) in [(1usize, 3usize, 2usize), (2, 3, 1), (2, 4, 2)] {
        let ec2 = Ec2::new(s, c, v);
        let optimizer = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let fb = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Full));
        let oqf = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Oqf));
        assert_eq!(fb.plans.len(), oqf.plans.len(), "[{s},{c},{v}]");
        // Every FB plan has an OQF counterpart (same query up to renaming).
        for fp in &fb.plans {
            assert!(
                oqf.plans
                    .iter()
                    .any(|op| chase_too_far::core::equivalence::same_plan(&fp.query, &op.query)),
                "FB plan missing from OQF on [{s},{c},{v}]:\n{}",
                fp.query
            );
        }
    }
}

/// OCS generates a subset of FB's plans (it trades completeness for time).
#[test]
fn ocs_plans_are_a_subset_of_fb() {
    for (s, c, v) in [(1usize, 4usize, 3usize), (2, 3, 2)] {
        let ec2 = Ec2::new(s, c, v);
        let optimizer = Optimizer::new(ec2.schema());
        let q = ec2.query();
        let fb = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Full));
        let ocs = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Ocs));
        assert!(ocs.plans.len() <= fb.plans.len());
        for op in &ocs.plans {
            assert!(
                fb.plans
                    .iter()
                    .any(|fp| chase_too_far::core::equivalence::same_plan(&fp.query, &op.query)),
                "OCS produced a plan FB did not:\n{}",
                op.query
            );
        }
    }
}

/// §5.4's global claim, end-to-end: the best generated plan beats the
/// original query on the generated dataset, and returns the same answer.
#[test]
fn best_plan_first_wins_at_execution() {
    let ec2 = Ec2::new(2, 2, 1);
    let db = ec2.generate(Ec2DataSpec {
        rows: 3000,
        ..Ec2DataSpec::default()
    });
    let q = ec2.query();
    let optimizer = Optimizer::new(ec2.schema());
    let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(Strategy::Oqf));
    let best = &res.plans[0];
    assert!(
        !best.physical_used.is_empty(),
        "best-first puts a view plan first"
    );
    let base = execute(&db, &q).unwrap();
    let opt = execute(&db, &best.query).unwrap();
    assert!(
        opt.stats.tuples_considered < base.stats.tuples_considered,
        "view plan does less work: {} vs {}",
        opt.stats.tuples_considered,
        base.stats.tuples_considered
    );
}

/// EC3's two-phase story: semantic flipping enables ASR plans; OCS and FB
/// both find an ASR-only plan of a single binding.
#[test]
fn ec3_asr_single_scan_plan() {
    let ec3 = Ec3::new(3, 1);
    let optimizer = Optimizer::new(ec3.schema());
    let q = ec3.query();
    for strategy in [Strategy::Full, Strategy::Ocs] {
        let res = optimizer.optimize(&q, &OptimizerConfig::with_strategy(strategy));
        let asr = res
            .plans
            .iter()
            .find(|p| p.physical_used.iter().any(|s| s.as_str() == "ASR1"))
            .unwrap_or_else(|| panic!("{strategy}: ASR plan missing"));
        assert_eq!(asr.arity, 1, "{strategy}: the ASR plan is a single scan");
    }
}

/// Chase fixpoints are genuinely fixpoints: re-chasing a universal plan
/// applies zero further steps, across all three configurations.
#[test]
fn universal_plans_are_fixpoints() {
    let cases: Vec<(Vec<Constraint>, Query)> = vec![
        {
            let ec1 = Ec1::new(4, 2);
            (ec1.schema().all_constraints(), ec1.query())
        },
        {
            let ec2 = Ec2::new(2, 3, 2);
            (ec2.schema().all_constraints(), ec2.query())
        },
        {
            let ec3 = Ec3::new(4, 1);
            (ec3.schema().all_constraints(), ec3.query())
        },
    ];
    for (cs, q) in cases {
        let (mut db, stats) = chase_query(&q, &cs, ChaseConfig::default());
        assert!(!stats.truncated);
        let again = chase(&mut db, &cs, ChaseConfig::default());
        assert_eq!(again.steps_applied, 0, "chase must be a fixpoint");
    }
}
