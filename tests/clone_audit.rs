//! Enforces the zero-per-candidate-clone contract of the backchase frontier:
//! the sequential search clones no `CanonDb` at all, and the parallel
//! frontier clones exactly one universal plan per worker per run —
//! regardless of how many candidates (2,579 on `ec1_4_2`) it explores.
//!
//! This file must stay a single-test binary: the clone counter is
//! process-global, and unrelated tests running in the same process would
//! perturb the deltas.

use chase_too_far::core::canon::canon_db_clones;
use chase_too_far::core::prelude::*;
use chase_too_far::workloads::Ec1;

#[test]
fn backchase_frontier_never_clones_per_candidate() {
    let ec1 = Ec1::new(4, 2);
    let q = ec1.query();
    let cs = ec1.schema().all_constraints();
    let cfg = |threads: usize| BackchaseConfig {
        threads,
        ..BackchaseConfig::default()
    };

    let before = canon_db_clones();
    let seq = chase_and_backchase(&q, &cs, &cfg(1));
    let seq_clones = canon_db_clones() - before;
    assert!(
        seq.explored > 1_000,
        "workload too small to prove anything: explored {}",
        seq.explored
    );
    assert_eq!(
        seq_clones, 0,
        "sequential backchase must perform zero CanonDb clones"
    );

    let before = canon_db_clones();
    let par = chase_and_backchase(&q, &cs, &cfg(4));
    let par_clones = canon_db_clones() - before;
    assert_eq!(
        par_clones, 4,
        "parallel backchase must clone exactly once per worker"
    );
    assert_eq!(seq.explored, par.explored);
    assert_eq!(seq.plans.len(), par.plans.len());
}
