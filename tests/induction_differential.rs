//! Differential suite for in-place (savepoint) subquery induction: on the
//! EC1–EC3 universal plans, `induce_subquery_pure` — savepoint, restrict,
//! rollback — must produce exactly the same induced query as the retired
//! clone-per-candidate implementation (`induce_subquery_via_clone`, kept as
//! the oracle) for **every** binding subset, and must leave the universal
//! plan byte-identical between candidates.

use chase_too_far::core::bitset::VarSet;
use chase_too_far::core::prelude::*;
use chase_too_far::core::subquery::induce_subquery_via_clone;
use chase_too_far::ir::prelude::*;
use chase_too_far::workloads::{Ec1, Ec2, Ec3};

/// Renders enough database state to detect any residue an induction might
/// leave behind (arena size, query text, class structure).
fn db_fingerprint(db: &mut CanonDb) -> String {
    let reps = db.cong.class_reps();
    format!(
        "terms={} reps={} arity={} q={}",
        db.cong.len(),
        reps.len(),
        db.arity(),
        db.query
    )
}

fn assert_inplace_matches_clone(tag: &str, q: &Query, constraints: &[Constraint]) {
    let (mut udb, stats) = chase_query(q, constraints, ChaseConfig::default());
    assert!(!stats.truncated, "{tag}: chase truncated");
    let vars: Vec<Var> = udb.query.from.iter().map(|b| b.var).collect();
    let n = vars.len();
    assert!(
        (2..=14).contains(&n),
        "{tag}: universal arity {n} out of the exhaustive-sweep range"
    );
    let baseline = db_fingerprint(&mut udb);

    for mask in 0u32..(1 << n) {
        let keep = VarSet::from_iter(
            vars.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, v)| *v),
        );
        let inplace = induce_subquery_pure(&mut udb, &keep, &q.select);
        let cloned = induce_subquery_via_clone(&udb, &keep, &q.select);
        assert_eq!(
            inplace, cloned,
            "{tag}: induction diverged on subset {mask:#b}"
        );
        assert_eq!(
            db_fingerprint(&mut udb),
            baseline,
            "{tag}: in-place induction left residue after subset {mask:#b}"
        );
    }
}

#[test]
fn ec1_induction_differential() {
    let ec1 = Ec1::new(3, 1);
    assert_inplace_matches_clone("ec1_3_1", &ec1.query(), &ec1.schema().all_constraints());
}

#[test]
fn ec2_induction_differential() {
    let ec2 = Ec2::new(1, 3, 2);
    assert_inplace_matches_clone("ec2_1_3_2", &ec2.query(), &ec2.schema().all_constraints());
}

#[test]
fn ec3_induction_differential() {
    let ec3 = Ec3::new(2, 0);
    assert_inplace_matches_clone("ec3_2", &ec3.query(), &ec3.schema().all_constraints());
}
