//! Umbrella crate re-exporting the whole workspace; see the crate-level
//! README for a tour. Examples live in `examples/`, integration tests in
//! `tests/`.

#![forbid(unsafe_code)]

pub use cnb_core as core;
pub use cnb_engine as engine;
pub use cnb_ir as ir;
pub use cnb_workloads as workloads;
